//===- tests/PortfolioBackendTest.cpp - portfolio race differential --------===//
//
// The portfolio backend races the ILP branch-and-bound and the CDCL
// pseudo-Boolean engine per II attempt, with cross-engine incumbent
// exchange and a persistent PB session. Its committed verdicts must be
// bit-exact with the sequential single-engine backends regardless of
// race timing — these tests enforce that differential three ways
// (portfolio vs ILP vs PB), plus the race invariants themselves: loser
// cancellation, winner bookkeeping, bound-exchange soundness (a shared
// incumbent must never cut off the true optimum), persistent-vs-fresh
// PB session equivalence, and the ParallelRace composition.
//
// Budgets stay small: on a single-core host the race time-slices, so a
// portfolio attempt costs roughly the sum of what its engines burn
// until the winner finishes. Censored runs skip, per repo convention.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"
#include "sched/PipelineSimulator.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

SchedulerOptions backendOpts(SchedulerBackend Backend, Objective Obj) {
  SchedulerOptions Opts;
  Opts.Backend = Backend;
  Opts.Formulation.Obj = Obj;
  Opts.TimeLimitSeconds = 30.0;
  return Opts;
}

/// Race-invariant checks every portfolio result must satisfy,
/// independent of the verdict: winners only on conclusive attempts,
/// never on cancelled ones, and the race's accounting is populated.
void checkRaceInvariants(const ScheduleResult &R) {
  for (const IiAttempt &A : R.Attempts) {
    EXPECT_TRUE(A.Winner.empty() || A.Winner == "ilp" || A.Winner == "pb")
        << "unknown winner '" << A.Winner << "' at II=" << A.II;
    if (A.Cancelled)
      EXPECT_TRUE(A.Winner.empty())
          << "cancelled attempt claims winner at II=" << A.II;
    if (A.Scheduled)
      EXPECT_FALSE(A.Winner.empty())
          << "scheduled attempt has no winner at II=" << A.II;
    EXPECT_GE(A.BoundExchanges, 0);
  }
}

/// Runs the portfolio and both sequential single-engine backends on
/// (M, G, Obj) and checks the three-way differential: identical Found
/// verdict, II, and objective value, plus an independently verified and
/// simulated portfolio schedule. Censored runs (any backend) prove
/// nothing and are skipped. Returns false when censored.
bool expectPortfolioAgrees(const MachineModel &M, const DependenceGraph &G,
                           Objective Obj) {
  ScheduleResult Ilp =
      OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Ilp, Obj))
          .schedule(G);
  ScheduleResult Pb =
      OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Pb, Obj))
          .schedule(G);
  ScheduleResult Port =
      OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Portfolio, Obj))
          .schedule(G);
  if (Ilp.TimedOut || Ilp.NodeLimitHit || Pb.TimedOut || Pb.NodeLimitHit ||
      Port.TimedOut || Port.NodeLimitHit)
    return false;
  checkRaceInvariants(Port);
  EXPECT_EQ(Ilp.Found, Port.Found) << M.name() << "/" << G.name();
  EXPECT_EQ(Pb.Found, Port.Found) << M.name() << "/" << G.name();
  if (!Ilp.Found || !Port.Found)
    return true;
  EXPECT_EQ(Ilp.II, Port.II) << M.name() << "/" << G.name();
  EXPECT_EQ(Ilp.Mii, Port.Mii) << M.name() << "/" << G.name();
  EXPECT_NEAR(Ilp.SecondaryObjective, Port.SecondaryObjective, 1e-6)
      << M.name() << "/" << G.name();
  EXPECT_NEAR(Pb.SecondaryObjective, Port.SecondaryObjective, 1e-6)
      << M.name() << "/" << G.name();
  EXPECT_FALSE(verifySchedule(G, M, Port.Schedule).has_value())
      << M.name() << "/" << G.name();
  EXPECT_FALSE(simulateSchedule(G, M, Port.Schedule,
                                Port.Schedule.numStages() + 24)
                   .Violation.has_value())
      << M.name() << "/" << G.name();
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Kernel-library differential
//===----------------------------------------------------------------------===//

TEST(PortfolioBackend, KernelNoObjAgreesWithBothEngines) {
  MachineModel M = MachineModel::example3();
  for (const DependenceGraph &G : allKernels(M))
    expectPortfolioAgrees(M, G, Objective::None);
}

TEST(PortfolioBackend, KernelMinBuffAgreesWithBothEngines) {
  MachineModel M = MachineModel::example3();
  for (const DependenceGraph &G :
       {paperExample1(M), livermore5(M), livermore11(M), dotProduct(M),
        daxpy(M)})
    expectPortfolioAgrees(M, G, Objective::MinBuff);
}

TEST(PortfolioBackend, PaperExample1MinRegIs7) {
  // Figure 1e's headline register number survives the race: with both
  // engines descending the MinReg objective and exchanging incumbents,
  // the committed optimum is still exactly 7 at II=2.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ScheduleResult R =
      OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Portfolio,
                                            Objective::MinReg))
          .schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.II, 2);
  EXPECT_NEAR(R.SecondaryObjective, 7.0, 1e-6);
  checkRaceInvariants(R);
}

//===----------------------------------------------------------------------===//
// Synthetic differential (12-seed suite)
//===----------------------------------------------------------------------===//

class PortfolioSyntheticTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PortfolioSyntheticTest, AgreesWithBothEngines) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 6151 + 29);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 10;
  DependenceGraph G = generateLoop(M, R, Opts);
  expectPortfolioAgrees(M, G, Objective::None);
  // Objective-value differential (engines exchange incumbents while
  // descending) on the same loop.
  expectPortfolioAgrees(M, G, Objective::MinBuff);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioSyntheticTest,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Bound-exchange correctness
//===----------------------------------------------------------------------===//

TEST(PortfolioBackend, BoundExchangeNeverCutsTheOptimum) {
  // Objective descent is where the shared incumbent actually bites: an
  // engine that accepts a foreign bound k and then refutes "obj <= k-1"
  // commits k as optimal. If the injected bound were ever wrong (cut
  // the true optimum), the committed objective would exceed the
  // sequential ILP's — so exact objective equality on descent-heavy
  // kernels is the correctness proof of the exchange protocol.
  MachineModel M = MachineModel::vliw2();
  for (const DependenceGraph &G :
       {paperExample1(M), livermore5(M), dotProduct(M)}) {
    ScheduleResult Seq =
        OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Ilp,
                                              Objective::MinReg))
            .schedule(G);
    ScheduleResult Port =
        OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Portfolio,
                                              Objective::MinReg))
            .schedule(G);
    if (Seq.TimedOut || Seq.NodeLimitHit || Port.TimedOut ||
        Port.NodeLimitHit)
      continue;
    ASSERT_EQ(Seq.Found, Port.Found) << G.name();
    if (!Seq.Found)
      continue;
    EXPECT_EQ(Seq.II, Port.II) << G.name();
    EXPECT_NEAR(Seq.SecondaryObjective, Port.SecondaryObjective, 1e-6)
        << G.name();
    EXPECT_FALSE(verifySchedule(G, M, Port.Schedule).has_value())
        << G.name();
    checkRaceInvariants(Port);
  }
}

TEST(PortfolioBackend, SharedIncumbentBeatsIlpOwnIncumbent) {
  // Regression: the ILP worker can exhaust its tree holding an
  // incumbent WORSE than the shared cell (the PB side published a
  // better schedule, and the ILP pruned the subtree containing it
  // against that very bound). Committing the ILP's own incumbent as
  // optimal is then wrong — the proof only covers "nothing better than
  // min(own, shared)". First seen on the bench suite's synthetic5
  // under MinLife/Traditional, where the race intermittently reported
  // 17 against the true optimum 16; repeated trials keep the
  // race-timing window covered.
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite =
      generateSuite(M, 25, 20260705, /*IncludeKernels=*/true, 32);
  size_t NumKernels = Suite.size() - 25;
  const DependenceGraph &G = Suite[NumKernels + 5];

  SchedulerOptions IlpOpts = backendOpts(SchedulerBackend::Ilp,
                                         Objective::MinLife);
  IlpOpts.Formulation.DepStyle = DependenceStyle::Traditional;
  ScheduleResult Seq = OptimalModuloScheduler(M, IlpOpts).schedule(G);
  ASSERT_TRUE(Seq.Found);

  for (int Trial = 0; Trial < 20; ++Trial) {
    SchedulerOptions PortOpts = IlpOpts;
    PortOpts.Backend = SchedulerBackend::Portfolio;
    ScheduleResult Port = OptimalModuloScheduler(M, PortOpts).schedule(G);
    if (Port.TimedOut || Port.NodeLimitHit)
      continue;
    ASSERT_TRUE(Port.Found) << "trial " << Trial;
    EXPECT_EQ(Seq.II, Port.II) << "trial " << Trial;
    ASSERT_NEAR(Seq.SecondaryObjective, Port.SecondaryObjective, 1e-6)
        << "trial " << Trial;
    checkRaceInvariants(Port);
  }
}

//===----------------------------------------------------------------------===//
// Persistent PB session: fresh-vs-reused equivalence
//===----------------------------------------------------------------------===//

TEST(PortfolioBackend, PersistentPbSessionMatchesFresh) {
  // The persistent session only changes how the PB worker searches
  // (carried clauses, activity, phases) — never what it concludes. A/B
  // the toggle on loops whose II ladder has several steps so the
  // session actually carries state across attempts.
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G :
       {secondOrderRecurrence(M), livermore5(M), stencil3(M)}) {
    SchedulerOptions Fresh = backendOpts(SchedulerBackend::Portfolio,
                                         Objective::MinBuff);
    Fresh.PortfolioPersistentPb = false;
    SchedulerOptions Reused = Fresh;
    Reused.PortfolioPersistentPb = true;
    ScheduleResult A = OptimalModuloScheduler(M, Fresh).schedule(G);
    ScheduleResult B = OptimalModuloScheduler(M, Reused).schedule(G);
    if (A.TimedOut || A.NodeLimitHit || B.TimedOut || B.NodeLimitHit)
      continue;
    ASSERT_EQ(A.Found, B.Found) << G.name();
    if (!A.Found)
      continue;
    EXPECT_EQ(A.II, B.II) << G.name();
    EXPECT_NEAR(A.SecondaryObjective, B.SecondaryObjective, 1e-6)
        << G.name();
    EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value()) << G.name();
    checkRaceInvariants(A);
    checkRaceInvariants(B);
  }
}

//===----------------------------------------------------------------------===//
// Eligibility sit-outs
//===----------------------------------------------------------------------===//

TEST(PortfolioBackend, MinLifeCoeffGuardSitsPbOut) {
  // Forcing the wide-coefficient guard (limit 0 makes every MinLife II
  // ineligible) must route the whole ladder through the inline ILP: the
  // verdict matches the sequential ILP and the PB engine never runs.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SchedulerOptions Opts = backendOpts(SchedulerBackend::Portfolio,
                                      Objective::MinLife);
  Opts.PortfolioPbCoeffLimit = 0;
  ScheduleResult Port = OptimalModuloScheduler(M, Opts).schedule(G);
  ScheduleResult Seq =
      OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Ilp,
                                            Objective::MinLife))
          .schedule(G);
  ASSERT_TRUE(Seq.Found && Port.Found);
  EXPECT_EQ(Seq.II, Port.II);
  EXPECT_NEAR(Seq.SecondaryObjective, Port.SecondaryObjective, 1e-6);
  EXPECT_EQ(Port.PbConflicts, 0);
  EXPECT_EQ(Port.PbPropagations, 0);
  for (const IiAttempt &A : Port.Attempts)
    if (!A.Winner.empty())
      EXPECT_EQ(A.Winner, "ilp");
}

TEST(PortfolioBackend, TinyNoObjEncodingSitsIlpOut) {
  // A feasibility attempt whose PB encoding is below the threshold runs
  // the PB engine inline (no race, no B&B nodes); an enormous threshold
  // forces that path for the whole ladder.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SchedulerOptions Opts = backendOpts(SchedulerBackend::Portfolio,
                                      Objective::None);
  Opts.PortfolioIlpMinPbVars = 1 << 20;
  ScheduleResult Port = OptimalModuloScheduler(M, Opts).schedule(G);
  ScheduleResult Seq =
      OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Ilp,
                                            Objective::None))
          .schedule(G);
  ASSERT_TRUE(Seq.Found && Port.Found);
  EXPECT_EQ(Seq.II, Port.II);
  EXPECT_EQ(Port.Nodes, 0);
  EXPECT_GT(Port.PbPropagations, 0);
  for (const IiAttempt &A : Port.Attempts)
    if (!A.Winner.empty())
      EXPECT_EQ(A.Winner, "pb");
  EXPECT_FALSE(verifySchedule(G, M, Port.Schedule).has_value());
}

//===----------------------------------------------------------------------===//
// ParallelRace composition
//===----------------------------------------------------------------------===//

TEST(PortfolioBackend, ParallelRaceMatchesSequential) {
  // The II race on top of the engine race: per-slot PortfolioStates are
  // reused across waves and the commit scan stays deterministic, so the
  // committed II/objective must match the sequential portfolio search.
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G : {secondOrderRecurrence(M), stencil3(M)}) {
    SchedulerOptions Seq = backendOpts(SchedulerBackend::Portfolio,
                                       Objective::None);
    SchedulerOptions Race = Seq;
    Race.Search = IiSearchKind::ParallelRace;
    Race.SearchJobs = 2;
    ScheduleResult A = OptimalModuloScheduler(M, Seq).schedule(G);
    ScheduleResult B = OptimalModuloScheduler(M, Race).schedule(G);
    if (A.TimedOut || B.TimedOut)
      continue;
    ASSERT_TRUE(A.Found && B.Found) << G.name();
    EXPECT_EQ(A.II, B.II) << G.name();
    EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value()) << G.name();
    checkRaceInvariants(A);
    checkRaceInvariants(B);
  }
}

//===----------------------------------------------------------------------===//
// Seam behavior and telemetry
//===----------------------------------------------------------------------===//

TEST(PortfolioBackend, BackendNameRoundTrips) {
  EXPECT_STREQ(toString(SchedulerBackend::Portfolio), "portfolio");
}

TEST(PortfolioBackend, RaceTelemetryIsPopulated) {
  // A raced MinBuff ladder must bump the portfolio counters: races
  // launched and a winner tallied on the conclusive attempts.
  int64_t RacesBefore = 0, WinsBefore = 0;
  if (const telemetry::Counter *C =
          telemetry::findCounter("ilpsched/portfolio.races"))
    RacesBefore = C->value();
  const telemetry::Counter *WIlp =
      telemetry::findCounter("ilpsched/portfolio.winner_ilp");
  const telemetry::Counter *WPb =
      telemetry::findCounter("ilpsched/portfolio.winner_pb");
  if (WIlp && WPb)
    WinsBefore = WIlp->value() + WPb->value();

  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = secondOrderRecurrence(M);
  ScheduleResult R =
      OptimalModuloScheduler(M, backendOpts(SchedulerBackend::Portfolio,
                                            Objective::MinBuff))
          .schedule(G);
  ASSERT_TRUE(R.Found);
  checkRaceInvariants(R);

  const telemetry::Counter *Races =
      telemetry::findCounter("ilpsched/portfolio.races");
  ASSERT_NE(Races, nullptr);
  ASSERT_NE(WIlp, nullptr);
  ASSERT_NE(WPb, nullptr);
  EXPECT_GT(Races->value(), RacesBefore);
  EXPECT_GT(WIlp->value() + WPb->value(), WinsBefore);
}
