//===- tests/SolutionCacheTest.cpp - Concurrent cache hammer ---------------===//
//
// Thread-safety and accounting tests for ilpsched/SolutionCache beyond
// the single-threaded differential coverage in ProblemHashTest:
//
//   * Hammer — N threads issue overlapping lookups and inserts for
//     canonical-EQUAL problems (the same loop under different node
//     numberings). Every hit must replay verifier-clean with the
//     fresh-solve II / secondary objective, the cache must converge to
//     exactly ONE entry (no duplicate inserts for one canonical form),
//     and the telemetry counters must conserve: hits + misses equals
//     the number of lookups issued, inserts equals the number of clean
//     insert calls, and nothing is evicted below capacity.
//   * Insert hygiene — censored / unfound / cache-served results are
//     refused without touching the entry count.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"
#include "ilpsched/SolutionCache.h"
#include "sched/Problem.h"
#include "support/Rng.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace modsched;

namespace {

/// One fixed loop shape: a five-op flow chain with a distance-1
/// recurrence, rebuilt with operation I renumbered to Perm[I] and the
/// edge insertion order rotated by \p Rot. All variants are schedule-
/// isomorphic, so they must share one canonical form and one cache
/// entry.
DependenceGraph makeLoopVariant(const MachineModel &M,
                                const std::vector<int> &Perm, int Rot) {
  const int Classes[5] = {*M.findOpClass(opclasses::Load),
                          *M.findOpClass(opclasses::Mul),
                          *M.findOpClass(opclasses::Add),
                          *M.findOpClass(opclasses::Sub),
                          *M.findOpClass(opclasses::Store)};
  struct FlowEdge {
    int Def, Use, Latency, Distance;
  };
  const FlowEdge Edges[5] = {
      {0, 1, 1, 0}, {1, 2, 4, 0}, {2, 3, 1, 0}, {3, 4, 1, 0}, {3, 1, 1, 1}};

  const int N = 5;
  DependenceGraph G;
  G.setName("hammer-variant");
  std::vector<int> Inverse(static_cast<size_t>(N), 0);
  for (int Op = 0; Op < N; ++Op)
    Inverse[static_cast<size_t>(Perm[static_cast<size_t>(Op)])] = Op;
  for (int NewId = 0; NewId < N; ++NewId)
    G.addOperation("v" + std::to_string(NewId),
                   Classes[static_cast<size_t>(Inverse[size_t(NewId)])]);
  for (int I = 0; I < 5; ++I) {
    const FlowEdge &E = Edges[static_cast<size_t>((I + Rot) % 5)];
    G.addFlowDependence(Perm[static_cast<size_t>(E.Def)],
                        Perm[static_cast<size_t>(E.Use)], E.Latency,
                        E.Distance);
  }
  return G;
}

int64_t counterValue(const char *Name) {
  telemetry::Counter *C = telemetry::findCounter(Name);
  EXPECT_NE(C, nullptr) << Name;
  return C ? C->value() : 0;
}

TEST(SolutionCacheConcurrency, HammerConservesCountersAndEntries) {
  MachineModel M = MachineModel::example3();

  // All node numberings of the same loop (a handful is enough; these
  // are full permutations of [0,5), rotated edge order included).
  const std::vector<std::vector<int>> Perms = {
      {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {1, 0, 3, 2, 4},
      {2, 4, 0, 1, 3}, {3, 0, 4, 2, 1}, {1, 2, 3, 4, 0}};
  std::vector<DependenceGraph> Graphs;
  for (size_t V = 0; V != Perms.size(); ++V)
    Graphs.push_back(makeLoopVariant(M, Perms[V], static_cast<int>(V)));

  SchedulerOptions SOpts;
  SOpts.Cache = false; // Fresh reference solves, no global-cache help.
  SOpts.TimeLimitSeconds = 20.0;
  OptimalModuloScheduler Sched(M, SOpts);

  const FormulationOptions FOpts = SOpts.Formulation;
  std::vector<std::unique_ptr<Problem>> Problems;
  std::vector<ScheduleResult> Fresh;
  for (const DependenceGraph &G : Graphs) {
    Fresh.push_back(Sched.schedule(G));
    ASSERT_TRUE(Fresh.back().Found) << "reference solve failed";
    Problems.push_back(std::make_unique<Problem>(G, M, FOpts));
  }

  // The variants really are canonical-equal (and exactly labeled, or
  // the cache would sit them out and the test would measure nothing).
  for (size_t V = 0; V != Problems.size(); ++V) {
    ASSERT_TRUE(Problems[V]->hashExact());
    ASSERT_EQ(Problems[V]->canonicalHash(), Problems[0]->canonicalHash());
    ASSERT_EQ(Fresh[V].II, Fresh[0].II);
    ASSERT_EQ(Fresh[V].SecondaryObjective, Fresh[0].SecondaryObjective);
  }

  SolutionCache Cache(64);
  const uint64_t Key = SolutionCache::requestKey(SOpts);

  const int Threads = 8;
  const int Iters = 400;
  std::atomic<int64_t> Lookups{0}, InsertCalls{0}, Hits{0};
  std::atomic<int> Mismatches{0};

  const int64_t Hits0 = counterValue("ilpsched/cache.hits");
  const int64_t Misses0 = counterValue("ilpsched/cache.misses");
  const int64_t Inserts0 = counterValue("ilpsched/cache.inserts");
  const int64_t Evict0 = counterValue("ilpsched/cache.evictions");

  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      telemetry::ThreadShardScope Shard; // Non-main recording thread.
      Rng R(0x9e3779b9u + static_cast<uint64_t>(T));
      for (int I = 0; I < Iters; ++I) {
        size_t V = static_cast<size_t>(
            R.nextBelow(static_cast<uint64_t>(Problems.size())));
        if (R.nextBool(0.5)) {
          ++Lookups;
          if (std::optional<SolutionCache::Hit> H =
                  Cache.lookup(*Problems[V], Key)) {
            ++Hits;
            if (H->II != Fresh[V].II ||
                H->SecondaryObjective != Fresh[V].SecondaryObjective)
              ++Mismatches;
          }
        } else {
          ++InsertCalls;
          Cache.insert(*Problems[V], Key, Fresh[V]);
        }
      }
    });
  for (std::thread &T : Pool)
    T.join(); // Thread exit merges each shard into the counters.

  // One canonical form => exactly one entry, however many concurrent
  // inserts raced to create it.
  EXPECT_EQ(Cache.size(), 1u);

  // Accounting conservation: every lookup is a hit or a miss, every
  // clean insert call counted, nothing evicted below capacity.
  EXPECT_EQ(counterValue("ilpsched/cache.hits") - Hits0 +
                (counterValue("ilpsched/cache.misses") - Misses0),
            Lookups.load());
  EXPECT_EQ(counterValue("ilpsched/cache.inserts") - Inserts0,
            InsertCalls.load());
  EXPECT_EQ(counterValue("ilpsched/cache.evictions") - Evict0, 0);

  // Replay fidelity: every hit carried the fresh-solve verdict (the
  // verifier re-check inside lookup() would already have aborted on a
  // corrupt schedule).
  EXPECT_EQ(Mismatches.load(), 0);
  EXPECT_GT(Hits.load(), 0) << "hammer never hit; mix is broken";
}

TEST(SolutionCacheConcurrency, InsertRefusesUncleanResults) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = makeLoopVariant(M, {0, 1, 2, 3, 4}, 0);

  SchedulerOptions SOpts;
  SOpts.Cache = false;
  SOpts.TimeLimitSeconds = 20.0;
  OptimalModuloScheduler Sched(M, SOpts);
  ScheduleResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);

  Problem P(G, M, SOpts.Formulation);
  ASSERT_TRUE(P.hashExact());
  SolutionCache Cache(8);
  const uint64_t Key = SolutionCache::requestKey(SOpts);

  ScheduleResult Censored = R;
  Censored.TimedOut = true;
  Cache.insert(P, Key, Censored);
  EXPECT_EQ(Cache.size(), 0u) << "censored result entered the cache";

  ScheduleResult NodeCapped = R;
  NodeCapped.NodeLimitHit = true;
  Cache.insert(P, Key, NodeCapped);
  EXPECT_EQ(Cache.size(), 0u);

  ScheduleResult Unfound = R;
  Unfound.Found = false;
  Cache.insert(P, Key, Unfound);
  EXPECT_EQ(Cache.size(), 0u);

  ScheduleResult Served = R;
  Served.CacheHit = true;
  Cache.insert(P, Key, Served);
  EXPECT_EQ(Cache.size(), 0u) << "cache-served result re-inserted";

  Cache.insert(P, Key, R);
  EXPECT_EQ(Cache.size(), 1u);
  std::optional<SolutionCache::Hit> H = Cache.lookup(P, Key);
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->II, R.II);
}

} // namespace
