//===- tests/CriticalCycleTest.cpp - critical recurrence tests -------------===//

#include "sched/CriticalCycle.h"

#include "sched/Mii.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

TEST(CriticalCycle, AcyclicHasNone) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = livermore1(M);
  EXPECT_FALSE(findCriticalCycle(G).has_value());
}

TEST(CriticalCycle, SelfLoop) {
  DependenceGraph G;
  int A = G.addOperation("acc", 0);
  G.addFlowDependence(A, A, 4, 1);
  auto Cycle = findCriticalCycle(G);
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_EQ(Cycle->Edges.size(), 1u);
  EXPECT_EQ(Cycle->TotalLatency, 4);
  EXPECT_EQ(Cycle->TotalDistance, 1);
  EXPECT_EQ(Cycle->iiBound(), 4);
}

TEST(CriticalCycle, PicksTheBindingOne) {
  // Two cycles: a->a latency 2 distance 1 (bound 2), and
  // b->c->b latency 7 distance 1 (bound 7): the latter binds.
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  int C = G.addOperation("c", 0);
  G.addSchedEdge(A, A, 2, 1);
  G.addSchedEdge(B, C, 3, 0);
  G.addSchedEdge(C, B, 4, 1);
  auto Cycle = findCriticalCycle(G);
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_EQ(Cycle->iiBound(), 7);
  EXPECT_EQ(Cycle->iiBound(), recMii(G));
  EXPECT_EQ(Cycle->Edges.size(), 2u);
}

TEST(CriticalCycle, MultiDistanceRatio) {
  // Cycle latency 7 over distance 2: RecMII = ceil(7/2) = 4.
  DependenceGraph G;
  int A = G.addOperation("a", 0);
  int B = G.addOperation("b", 0);
  G.addSchedEdge(A, B, 3, 0);
  G.addSchedEdge(B, A, 4, 2);
  auto Cycle = findCriticalCycle(G);
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_EQ(Cycle->TotalLatency, 7);
  EXPECT_EQ(Cycle->TotalDistance, 2);
  EXPECT_EQ(Cycle->iiBound(), 4);
}

TEST(CriticalCycle, DescribeMentionsOpsAndBound) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = secondOrderRecurrence(M);
  auto Cycle = findCriticalCycle(G);
  ASSERT_TRUE(Cycle.has_value());
  std::string Text = describeCycle(G, *Cycle);
  EXPECT_NE(Text.find("II >= 6"), std::string::npos) << Text;
  EXPECT_NE(Text.find("->"), std::string::npos);
}

TEST(CriticalCycle, KernelsAgreeWithRecMii) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G : allKernels(M)) {
    int Rec = recMii(G);
    auto Cycle = findCriticalCycle(G);
    if (Rec == 1) {
      // A critical cycle may or may not exist at RecMII 1; if one is
      // found its bound must still be 1.
      if (Cycle) {
        EXPECT_EQ(Cycle->iiBound(), 1) << G.name();
      }
      continue;
    }
    ASSERT_TRUE(Cycle.has_value()) << G.name();
    EXPECT_EQ(Cycle->iiBound(), Rec) << G.name();
  }
}

class CriticalCycleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CriticalCycleProperty, ExtractedBoundMatchesBinarySearch) {
  MachineModel M = MachineModel::example3();
  Rng R(GetParam() * 37 + 13);
  SyntheticOptions Opts;
  Opts.MinOps = 4;
  Opts.MaxOps = 16;
  Opts.RecurrenceProb = 0.9; // Bias toward cyclic graphs.
  DependenceGraph G = generateLoop(M, R, Opts);
  int Rec = recMii(G);
  auto Cycle = findCriticalCycle(G);
  if (Rec > 1) {
    ASSERT_TRUE(Cycle.has_value()) << G.toString();
    EXPECT_EQ(Cycle->iiBound(), Rec) << G.toString();
  } else if (Cycle) {
    EXPECT_EQ(Cycle->iiBound(), 1) << G.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, CriticalCycleProperty,
                         ::testing::Range<uint64_t>(0, 40));
