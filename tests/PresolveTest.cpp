//===- tests/PresolveTest.cpp - bound propagation tests --------------------===//

#include "ilp/Presolve.h"

#include "ilp/BranchAndBound.h"
#include "ilpsched/Formulation.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;
using namespace modsched::ilp;
using namespace modsched::lp;

namespace {

std::pair<std::vector<double>, std::vector<double>> boundsOf(const Model &M) {
  std::vector<double> Lo, Up;
  for (const Variable &V : M.variables()) {
    Lo.push_back(V.Lower);
    Up.push_back(V.Upper);
  }
  return {Lo, Up};
}

} // namespace

TEST(Presolve, TightensSimpleLe) {
  // x + y <= 3 with y >= 2 forces x <= 1.
  Model M;
  int X = M.addVariable("x", 0, 10, 0, VarKind::Integer);
  int Y = M.addVariable("y", 2, 10, 0, VarKind::Integer);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::LE, 3.0);
  auto [Lo, Up] = boundsOf(M);
  ASSERT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Feasible);
  EXPECT_DOUBLE_EQ(Up[X], 1.0);
  EXPECT_DOUBLE_EQ(Up[Y], 3.0);
}

TEST(Presolve, RoundsIntegerBounds) {
  // 2x <= 5 -> x <= 2 for integer x (2.5 rounded down).
  Model M;
  int X = M.addVariable("x", 0, 10, 0, VarKind::Integer);
  M.addConstraint({{X, 2.0}}, ConstraintSense::LE, 5.0);
  auto [Lo, Up] = boundsOf(M);
  ASSERT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Feasible);
  EXPECT_DOUBLE_EQ(Up[X], 2.0);
}

TEST(Presolve, KeepsContinuousFractional) {
  Model M;
  int X = M.addVariable("x", 0, 10, 0);
  M.addConstraint({{X, 2.0}}, ConstraintSense::LE, 5.0);
  auto [Lo, Up] = boundsOf(M);
  ASSERT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Feasible);
  EXPECT_NEAR(Up[X], 2.5, 1e-9);
}

TEST(Presolve, PropagatesGe) {
  // x + y >= 8, x <= 3 -> y >= 5.
  Model M;
  int X = M.addVariable("x", 0, 3, 0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 10, 0, VarKind::Integer);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::GE, 8.0);
  auto [Lo, Up] = boundsOf(M);
  ASSERT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Feasible);
  EXPECT_DOUBLE_EQ(Lo[Y], 5.0);
  (void)X;
}

TEST(Presolve, EqualityPropagatesBothWays) {
  // x + y = 4 with x in [1,3] -> y in [1,3].
  Model M;
  int X = M.addVariable("x", 1, 3, 0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 10, 0, VarKind::Integer);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::EQ, 4.0);
  auto [Lo, Up] = boundsOf(M);
  ASSERT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Feasible);
  EXPECT_DOUBLE_EQ(Lo[Y], 1.0);
  EXPECT_DOUBLE_EQ(Up[Y], 3.0);
  (void)X;
}

TEST(Presolve, DetectsInfeasibleActivity) {
  // x + y <= 1 with x,y >= 1: min activity 2 > 1.
  Model M;
  int X = M.addVariable("x", 1, 5, 0);
  int Y = M.addVariable("y", 1, 5, 0);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::LE, 1.0);
  auto [Lo, Up] = boundsOf(M);
  EXPECT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Infeasible);
}

TEST(Presolve, ChainsAcrossConstraints) {
  // x <= 1; x >= y; y >= z ... fixpoint across constraints.
  Model M;
  int X = M.addVariable("x", 0, 9, 0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 9, 0, VarKind::Integer);
  int Z = M.addVariable("z", 0, 9, 0, VarKind::Integer);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 1.0);
  M.addConstraint({{Y, 1.0}, {X, -1.0}}, ConstraintSense::LE, 0.0);
  M.addConstraint({{Z, 1.0}, {Y, -1.0}}, ConstraintSense::LE, 0.0);
  auto [Lo, Up] = boundsOf(M);
  ASSERT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Feasible);
  EXPECT_DOUBLE_EQ(Up[Z], 1.0);
}

TEST(Presolve, HandlesInfiniteBoundsGracefully) {
  Model M;
  int X = M.addVariable("x", -infinity(), infinity(), 0);
  int Y = M.addVariable("y", 0, 5, 0);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::LE, 3.0);
  auto [Lo, Up] = boundsOf(M);
  // X's contribution is unbounded below: no sound tightening of Y, and
  // no crash/NaN.
  ASSERT_EQ(propagateBounds(M, Lo, Up), PropagationResult::Feasible);
  EXPECT_DOUBLE_EQ(Up[Y], 5.0);
  (void)X;
}

TEST(Presolve, MipOptimaUnchangedByPresolve) {
  // Same optimum with and without node presolve on a real formulation.
  MachineModel Machine = MachineModel::example3();
  DependenceGraph G = paperExample1(Machine);
  FormulationOptions FOpts;
  FOpts.Obj = Objective::MinReg;
  Formulation F(G, Machine, 2, FOpts);
  ASSERT_TRUE(F.valid());
  double Objectives[2];
  for (int I = 0; I < 2; ++I) {
    MipOptions Opts;
    Opts.NodePresolve = I == 1;
    MipResult R = MipSolver(Opts).solve(F.model());
    EXPECT_EQ(R.Status, MipStatus::Optimal);
    Objectives[I] = R.Objective;
  }
  EXPECT_NEAR(Objectives[0], Objectives[1], 1e-6);
  EXPECT_NEAR(Objectives[0], 7.0, 1e-6);
}

class PresolveRandomMip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PresolveRandomMip, PreservesOptimum) {
  Rng R(GetParam() * 3 + 2);
  Model M;
  const int N = 4;
  for (int I = 0; I < N; ++I)
    M.addVariable("x" + std::to_string(I), 0, 4,
                  double(R.nextInRange(-4, 4)), VarKind::Integer);
  for (int C = 0; C < 3; ++C) {
    std::vector<Term> Terms;
    for (int I = 0; I < N; ++I)
      Terms.push_back({I, double(R.nextInRange(-3, 3))});
    M.addConstraint(Terms,
                    R.nextBool(0.5) ? ConstraintSense::LE
                                    : ConstraintSense::GE,
                    double(R.nextInRange(-6, 10)));
  }
  MipOptions WithP, WithoutP;
  WithP.NodePresolve = true;
  WithoutP.NodePresolve = false;
  MipResult A = MipSolver(WithP).solve(M);
  MipResult B = MipSolver(WithoutP).solve(M);
  ASSERT_EQ(A.Status == MipStatus::Infeasible,
            B.Status == MipStatus::Infeasible)
      << M.toString();
  if (A.Status == MipStatus::Optimal) {
    EXPECT_NEAR(A.Objective, B.Objective, 1e-6) << M.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMips, PresolveRandomMip,
                         ::testing::Range<uint64_t>(0, 30));
