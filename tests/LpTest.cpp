//===- tests/LpTest.cpp - simplex solver tests ----------------------------===//

#include "lp/Model.h"
#include "lp/Simplex.h"

#include <gtest/gtest.h>

using namespace modsched;
using namespace modsched::lp;

namespace {

LpResult solveModel(const Model &M) {
  SimplexSolver S;
  return S.solve(M);
}

} // namespace

TEST(Model, CanonicalizesTerms) {
  Model M;
  int X = M.addVariable("x", 0, 10);
  int Y = M.addVariable("y", 0, 10);
  M.addConstraint({{X, 1.0}, {X, 2.0}, {Y, 0.5}, {Y, -0.5}}, ConstraintSense::LE,
                  5.0);
  const Constraint &C = M.constraint(0);
  ASSERT_EQ(C.Terms.size(), 1u); // y dropped, x merged.
  EXPECT_EQ(C.Terms[0].first, X);
  EXPECT_DOUBLE_EQ(C.Terms[0].second, 3.0);
}

TEST(Model, CanonicalizationDropsAllZeroConstraintsTerms) {
  // Hygiene contract both simplex engines rely on (the sparse engine
  // compiles the canonical terms verbatim into its CSC/CSR matrix, see
  // tests/SparseSimplexTest.cpp): duplicates merge, exact-zero
  // coefficients drop, and a term that cancels to zero vanishes.
  Model M;
  int X = M.addVariable("x", 0, 10);
  int Y = M.addVariable("y", 0, 10);
  int Z = M.addVariable("z", 0, 10);
  M.addConstraint({{Z, 0.0}, {X, -1.0}, {Y, 2.0}, {X, 1.0}, {Y, 1.0}},
                  ConstraintSense::GE, 1.0);
  const Constraint &C = M.constraint(0);
  ASSERT_EQ(C.Terms.size(), 1u); // x cancelled, z zero, y merged.
  EXPECT_EQ(C.Terms[0].first, Y);
  EXPECT_DOUBLE_EQ(C.Terms[0].second, 3.0);
  // Terms arrive sorted by variable index (map order), which the CSR
  // compilation asserts on.
  Model M2;
  int A = M2.addVariable("a", 0, 1);
  int B = M2.addVariable("b", 0, 1);
  M2.addConstraint({{B, 1.0}, {A, 1.0}}, ConstraintSense::LE, 1.0);
  const Constraint &C2 = M2.constraint(0);
  ASSERT_EQ(C2.Terms.size(), 2u);
  EXPECT_LT(C2.Terms[0].first, C2.Terms[1].first);
}

TEST(Model, ZeroOneStructureCheck) {
  Model M;
  int X = M.addVariable("x", 0, 1);
  int Y = M.addVariable("y", 0, 1);
  M.addConstraint({{X, 1.0}, {Y, -1.0}}, ConstraintSense::LE, 0.0);
  EXPECT_TRUE(M.isZeroOneStructured());
  M.addConstraint({{X, 2.0}}, ConstraintSense::LE, 2.0);
  EXPECT_FALSE(M.isZeroOneStructured());
}

TEST(Simplex, UnconstrainedBoundsOnly) {
  // minimize -x with x in [0, 7]: optimum at the upper bound.
  Model M;
  M.addVariable("x", 0, 7, -1.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(R.Objective, -7.0);
  EXPECT_DOUBLE_EQ(R.Values[0], 7.0);
}

TEST(Simplex, ClassicTwoVariable) {
  // maximize 3x + 5y st x<=4, 2y<=12, 3x+2y<=18 (Dantzig's example).
  // As minimization of -3x-5y; optimum (2, 6) value -36.
  Model M;
  int X = M.addVariable("x", 0, infinity(), -3.0);
  int Y = M.addVariable("y", 0, infinity(), -5.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 4.0);
  M.addConstraint({{Y, 2.0}}, ConstraintSense::LE, 12.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 18.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -36.0, 1e-6);
  EXPECT_NEAR(R.Values[X], 2.0, 1e-6);
  EXPECT_NEAR(R.Values[Y], 6.0, 1e-6);
}

TEST(Simplex, EqualityConstraintNeedsPhase1) {
  // minimize x + y st x + y = 10, x - y >= 2; optimum (6,4) -> 10.
  Model M;
  int X = M.addVariable("x", 0, infinity(), 1.0);
  int Y = M.addVariable("y", 0, infinity(), 1.0);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::EQ, 10.0);
  M.addConstraint({{X, 1.0}, {Y, -1.0}}, ConstraintSense::GE, 2.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 10.0, 1e-6);
  EXPECT_NEAR(R.Values[X] + R.Values[Y], 10.0, 1e-6);
  EXPECT_GE(R.Values[X] - R.Values[Y], 2.0 - 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  Model M;
  int X = M.addVariable("x", 0, 5);
  M.addConstraint({{X, 1.0}}, ConstraintSense::GE, 6.0);
  EXPECT_EQ(solveModel(M).Status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Model M;
  int X = M.addVariable("x", 0, infinity());
  int Y = M.addVariable("y", 0, infinity());
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::EQ, 1.0);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::EQ, 2.0);
  EXPECT_EQ(solveModel(M).Status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model M;
  int X = M.addVariable("x", 0, infinity(), -1.0);
  int Y = M.addVariable("y", 0, infinity(), 0.0);
  M.addConstraint({{X, 1.0}, {Y, -1.0}}, ConstraintSense::LE, 1.0);
  EXPECT_EQ(solveModel(M).Status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // minimize x st x >= -3 (bound), x >= -10 (constraint).
  Model M;
  int X = M.addVariable("x", -3.0, infinity(), 1.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::GE, -10.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Values[X], -3.0, 1e-6);
}

TEST(Simplex, FreeVariable) {
  // minimize x st x >= -17.5 via constraint; x free.
  Model M;
  int X = M.addVariable("x", -infinity(), infinity(), 1.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::GE, -17.5);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Values[X], -17.5, 1e-6);
}

TEST(Simplex, BoundFlipPath) {
  // maximize x + y with x,y in [0,1] and x + y <= 1.5: optimum 1.5.
  Model M;
  int X = M.addVariable("x", 0, 1, -1.0);
  int Y = M.addVariable("y", 0, 1, -1.0);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::LE, 1.5);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -1.5, 1e-6);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // A classic degenerate LP; must terminate (Bland fallback).
  Model M;
  int X = M.addVariable("x", 0, infinity(), -0.75);
  int Y = M.addVariable("y", 0, infinity(), 150.0);
  int Z = M.addVariable("z", 0, infinity(), -0.02);
  int W = M.addVariable("w", 0, infinity(), 6.0);
  M.addConstraint({{X, 0.25}, {Y, -60.0}, {Z, -0.04}, {W, 9.0}},
                  ConstraintSense::LE, 0.0);
  M.addConstraint({{X, 0.5}, {Y, -90.0}, {Z, -0.02}, {W, 3.0}},
                  ConstraintSense::LE, 0.0);
  M.addConstraint({{Z, 1.0}}, ConstraintSense::LE, 1.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -0.05, 1e-6); // Beale's example optimum -1/20.
}

TEST(Simplex, SolveWithOverriddenBounds) {
  Model M;
  int X = M.addVariable("x", 0, 10, -1.0);
  SimplexSolver S;
  LpResult R = S.solve(M, {2.0}, {5.0});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Values[X], 5.0, 1e-6);
  // Inverted override bounds -> infeasible node.
  EXPECT_EQ(S.solve(M, {6.0}, {5.0}).Status, LpStatus::Infeasible);
}

TEST(Simplex, EqualityWithNegativeRhs) {
  // minimize y st -x - y = -4, x <= 1 => y >= 3.
  Model M;
  int X = M.addVariable("x", 0, 1, 0.0);
  int Y = M.addVariable("y", 0, infinity(), 1.0);
  M.addConstraint({{X, -1.0}, {Y, -1.0}}, ConstraintSense::EQ, -4.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 3.0, 1e-6);
}

TEST(Simplex, ZeroConstraintModel) {
  Model M;
  M.addVariable("x", 1.0, 4.0, 2.0);
  M.addVariable("y", -2.0, 2.0, -3.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 2.0 * 1.0 - 3.0 * 2.0, 1e-9);
}

TEST(Simplex, ReportsIterations) {
  Model M;
  int X = M.addVariable("x", 0, infinity(), -3.0);
  int Y = M.addVariable("y", 0, infinity(), -5.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 4.0);
  M.addConstraint({{Y, 2.0}}, ConstraintSense::LE, 12.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 18.0);
  LpResult R = solveModel(M);
  EXPECT_GT(R.Iterations, 0);
}

TEST(Simplex, IterationLimitReported) {
  SimplexOptions Opts;
  Opts.MaxIterations = 1;
  SimplexSolver S(Opts);
  Model M;
  int X = M.addVariable("x", 0, infinity(), -3.0);
  int Y = M.addVariable("y", 0, infinity(), -5.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 4.0);
  M.addConstraint({{Y, 2.0}}, ConstraintSense::LE, 12.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 18.0);
  EXPECT_EQ(S.solve(M).Status, LpStatus::IterationLimit);
}

TEST(Simplex, DeadlineReportsLimit) {
  SimplexOptions Opts;
  Opts.TimeLimitSeconds = -1.0; // Already expired: deterministic.
  SimplexSolver S(Opts);
  Model M;
  int X = M.addVariable("x", 0, infinity(), -1.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 4.0);
  EXPECT_EQ(S.solve(M).Status, LpStatus::IterationLimit);
}

TEST(Simplex, StatusNames) {
  EXPECT_STREQ(toString(LpStatus::Optimal), "optimal");
  EXPECT_STREQ(toString(LpStatus::Infeasible), "infeasible");
  EXPECT_STREQ(toString(LpStatus::Unbounded), "unbounded");
  EXPECT_STREQ(toString(LpStatus::IterationLimit), "iteration-limit");
}

TEST(Model, ToStringRendersEverything) {
  Model M;
  int X = M.addVariable("x", 0, 4, 2.0, VarKind::Integer);
  M.addConstraint({{X, 1.0}}, ConstraintSense::GE, 1.0, "lowbound");
  std::string S = M.toString();
  EXPECT_NE(S.find("minimize"), std::string::npos);
  EXPECT_NE(S.find("lowbound"), std::string::npos);
  EXPECT_NE(S.find("integer"), std::string::npos);
}

TEST(Model, InfeasibilityReasonsAreDescriptive) {
  Model M;
  int X = M.addVariable("x", 0, 4, 0.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 2.0, "cap");
  std::string Why;
  EXPECT_FALSE(M.isFeasible({9.0}, 1e-6, &Why));
  EXPECT_NE(Why.find("outside"), std::string::npos);
  Why.clear();
  EXPECT_FALSE(M.isFeasible({3.0}, 1e-6, &Why));
  EXPECT_NE(Why.find("cap"), std::string::npos);
}

TEST(Simplex, ManyDegenerateEqualities) {
  // A chain of equalities sharing a value: stress phase 1 + degeneracy.
  Model M;
  const int N = 30;
  std::vector<int> Vars;
  for (int I = 0; I < N; ++I)
    Vars.push_back(M.addVariable("x" + std::to_string(I), 0, 10, 1.0));
  for (int I = 0; I + 1 < N; ++I)
    M.addConstraint({{Vars[I], 1.0}, {Vars[I + 1], -1.0}},
                    ConstraintSense::EQ, 0.0);
  M.addConstraint({{Vars[0], 1.0}}, ConstraintSense::GE, 3.0);
  LpResult R = SimplexSolver().solve(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 3.0 * N, 1e-6);
}

TEST(Simplex, FeasibilityCheckerAgrees) {
  Model M;
  int X = M.addVariable("x", 0, infinity(), -3.0);
  int Y = M.addVariable("y", 0, infinity(), -5.0);
  M.addConstraint({{X, 1.0}}, ConstraintSense::LE, 4.0);
  M.addConstraint({{Y, 2.0}}, ConstraintSense::LE, 12.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 18.0);
  LpResult R = solveModel(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  std::string Why;
  EXPECT_TRUE(M.isFeasible(R.Values, 1e-6, &Why)) << Why;
}
