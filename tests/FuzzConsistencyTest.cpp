//===- tests/FuzzConsistencyTest.cpp - verifier/simulator agreement --------===//
//
// Mutation fuzzing: start from a valid schedule, randomly perturb start
// times, and require the static verifier and the dynamic pipeline
// simulator to AGREE on validity. The two checkers share no code (one
// folds constraints onto the MRT, the other executes cycles), so
// agreement on thousands of mutants is strong evidence both are right.
//
//===----------------------------------------------------------------------===//

#include "heuristic/IterativeModuloScheduler.h"
#include "sched/PipelineSimulator.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

/// Iterations needed so every steady-state overlap (and thus every MRT
/// conflict) materializes dynamically.
int enoughIterations(const ModuloSchedule &S) {
  return S.numStages() + 24;
}

} // namespace

class FuzzConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzConsistencyTest, VerifierAndSimulatorAgree) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 101 + 41);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 10;
  DependenceGraph G = generateLoop(M, R, Opts);
  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  if (!H.Found)
    GTEST_SKIP();

  // The pristine schedule passes both checkers.
  ASSERT_FALSE(verifySchedule(G, M, H.Schedule).has_value());
  ASSERT_FALSE(simulateSchedule(G, M, H.Schedule,
                                enoughIterations(H.Schedule))
                   .Violation.has_value());

  int MaxTime = H.Schedule.scheduleLength() + 2 * H.Schedule.ii();
  for (int Mutant = 0; Mutant < 40; ++Mutant) {
    ModuloSchedule S = H.Schedule;
    // Perturb 1-2 operations.
    int NumMutations = 1 + (R.nextBool(0.4) ? 1 : 0);
    for (int K = 0; K < NumMutations; ++K) {
      int Op = static_cast<int>(R.nextBelow(G.numOperations()));
      S.times()[Op] = static_cast<int>(R.nextInRange(0, MaxTime));
    }
    bool StaticOk = !verifySchedule(G, M, S).has_value();
    SimulationReport Sim = simulateSchedule(G, M, S, enoughIterations(S));
    bool DynamicOk = !Sim.Violation.has_value();
    EXPECT_EQ(StaticOk, DynamicOk)
        << "static=" << StaticOk << " dynamic="
        << (Sim.Violation ? *Sim.Violation : std::string("ok")) << "\n"
        << G.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest,
                         ::testing::Range<uint64_t>(0, 25));
