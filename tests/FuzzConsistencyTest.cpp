//===- tests/FuzzConsistencyTest.cpp - verifier/simulator agreement --------===//
//
// Mutation fuzzing: start from a valid schedule, randomly perturb start
// times, and require the static verifier and the dynamic pipeline
// simulator to AGREE on validity. The two checkers share no code (one
// folds constraints onto the MRT, the other executes cycles), so
// agreement on thousands of mutants is strong evidence both are right.
//
// A second differential leg fuzzes the two exact BACKENDS against each
// other: on random loops the branch-and-bound ILP and the CDCL
// pseudo-Boolean engine must agree on the feasible-II verdict, the
// achieved II, and the optimal objective value — they share no solver
// code, only the formulation's mathematics.
//
//===----------------------------------------------------------------------===//

#include "heuristic/IterativeModuloScheduler.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/PipelineSimulator.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

/// Iterations needed so every steady-state overlap (and thus every MRT
/// conflict) materializes dynamically.
int enoughIterations(const ModuloSchedule &S) {
  return S.numStages() + 24;
}

} // namespace

class FuzzConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzConsistencyTest, VerifierAndSimulatorAgree) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 101 + 41);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 10;
  DependenceGraph G = generateLoop(M, R, Opts);
  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  if (!H.Found)
    GTEST_SKIP();

  // The pristine schedule passes both checkers.
  ASSERT_FALSE(verifySchedule(G, M, H.Schedule).has_value());
  ASSERT_FALSE(simulateSchedule(G, M, H.Schedule,
                                enoughIterations(H.Schedule))
                   .Violation.has_value());

  int MaxTime = H.Schedule.scheduleLength() + 2 * H.Schedule.ii();
  for (int Mutant = 0; Mutant < 40; ++Mutant) {
    ModuloSchedule S = H.Schedule;
    // Perturb 1-2 operations.
    int NumMutations = 1 + (R.nextBool(0.4) ? 1 : 0);
    for (int K = 0; K < NumMutations; ++K) {
      int Op = static_cast<int>(R.nextBelow(G.numOperations()));
      S.times()[Op] = static_cast<int>(R.nextInRange(0, MaxTime));
    }
    bool StaticOk = !verifySchedule(G, M, S).has_value();
    SimulationReport Sim = simulateSchedule(G, M, S, enoughIterations(S));
    bool DynamicOk = !Sim.Violation.has_value();
    EXPECT_EQ(StaticOk, DynamicOk)
        << "static=" << StaticOk << " dynamic="
        << (Sim.Violation ? *Sim.Violation : std::string("ok")) << "\n"
        << G.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest,
                         ::testing::Range<uint64_t>(0, 25));

//===----------------------------------------------------------------------===//
// PB-vs-ILP backend differential fuzz
//===----------------------------------------------------------------------===//

class BackendDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendDifferentialTest, PbAndIlpAgree) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 131 + 7);
  SyntheticOptions Gen;
  Gen.MinOps = 3;
  Gen.MaxOps = 10;

  // Four loops per seed x 25 seeds = 100 random loops through both
  // exact engines. Loop 0 of each seed additionally runs the MinBuff
  // descent so optimal objective VALUES (not just verdicts) differ-test.
  for (int LoopIdx = 0; LoopIdx < 4; ++LoopIdx) {
    DependenceGraph G = generateLoop(M, R, Gen);
    for (Objective Obj : {Objective::None, Objective::MinBuff}) {
      if (Obj == Objective::MinBuff && LoopIdx != 0)
        continue;
      SchedulerOptions IlpOpts, PbOpts;
      IlpOpts.Backend = SchedulerBackend::Ilp;
      PbOpts.Backend = SchedulerBackend::Pb;
      IlpOpts.Formulation.Obj = PbOpts.Formulation.Obj = Obj;
      IlpOpts.TimeLimitSeconds = PbOpts.TimeLimitSeconds = 20.0;
      ScheduleResult A = OptimalModuloScheduler(M, IlpOpts).schedule(G);
      ScheduleResult B = OptimalModuloScheduler(M, PbOpts).schedule(G);
      if (A.TimedOut || A.NodeLimitHit || B.TimedOut || B.NodeLimitHit)
        continue; // Censored solves prove nothing; skip, don't fail.
      ASSERT_EQ(A.Found, B.Found)
          << toString(Obj) << " loop " << LoopIdx << "\n" << G.toString();
      if (!A.Found)
        continue;
      EXPECT_EQ(A.II, B.II)
          << toString(Obj) << " loop " << LoopIdx << "\n" << G.toString();
      EXPECT_NEAR(A.SecondaryObjective, B.SecondaryObjective, 1e-6)
          << toString(Obj) << " loop " << LoopIdx << "\n" << G.toString();
      // The PB schedule passes both independent checkers.
      EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value())
          << G.toString();
      EXPECT_FALSE(simulateSchedule(G, M, B.Schedule,
                                    enoughIterations(B.Schedule))
                       .Violation.has_value())
          << G.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendDifferentialTest,
                         ::testing::Range<uint64_t>(0, 25));

//===----------------------------------------------------------------------===//
// Portfolio-vs-ILP differential fuzz
//===----------------------------------------------------------------------===//

class PortfolioDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PortfolioDifferentialTest, PortfolioAndIlpAgree) {
  // The portfolio backend races both exact engines per II with
  // cross-engine bound sharing; its committed verdicts must stay
  // bit-exact with the sequential ILP regardless of race timing. Two
  // loops per seed x 10 seeds (the race time-slices on small hosts, so
  // this leg stays lighter than the PB one above); loop 0 additionally
  // runs the MinBuff descent so the incumbent-exchange path is fuzzed,
  // not just feasibility.
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 197 + 3);
  SyntheticOptions Gen;
  Gen.MinOps = 3;
  Gen.MaxOps = 10;
  for (int LoopIdx = 0; LoopIdx < 2; ++LoopIdx) {
    DependenceGraph G = generateLoop(M, R, Gen);
    for (Objective Obj : {Objective::None, Objective::MinBuff}) {
      if (Obj == Objective::MinBuff && LoopIdx != 0)
        continue;
      SchedulerOptions IlpOpts, PortOpts;
      IlpOpts.Backend = SchedulerBackend::Ilp;
      PortOpts.Backend = SchedulerBackend::Portfolio;
      IlpOpts.Formulation.Obj = PortOpts.Formulation.Obj = Obj;
      IlpOpts.TimeLimitSeconds = PortOpts.TimeLimitSeconds = 20.0;
      ScheduleResult A = OptimalModuloScheduler(M, IlpOpts).schedule(G);
      ScheduleResult B = OptimalModuloScheduler(M, PortOpts).schedule(G);
      if (A.TimedOut || A.NodeLimitHit || B.TimedOut || B.NodeLimitHit)
        continue; // Censored solves prove nothing; skip, don't fail.
      ASSERT_EQ(A.Found, B.Found)
          << toString(Obj) << " loop " << LoopIdx << "\n" << G.toString();
      if (!A.Found)
        continue;
      EXPECT_EQ(A.II, B.II)
          << toString(Obj) << " loop " << LoopIdx << "\n" << G.toString();
      EXPECT_NEAR(A.SecondaryObjective, B.SecondaryObjective, 1e-6)
          << toString(Obj) << " loop " << LoopIdx << "\n" << G.toString();
      // The portfolio schedule passes both independent checkers.
      EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value())
          << G.toString();
      EXPECT_FALSE(simulateSchedule(G, M, B.Schedule,
                                    enoughIterations(B.Schedule))
                       .Violation.has_value())
          << G.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioDifferentialTest,
                         ::testing::Range<uint64_t>(0, 10));
