//===- tests/CodegenTest.cpp - pipelined code emission tests ---------------===//

#include "codegen/KernelEmitter.h"

#include "heuristic/IterativeModuloScheduler.h"
#include "sched/RegisterPressure.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

#include <map>

using namespace modsched;

namespace {

ModuloSchedule figure1bSchedule() { return ModuloSchedule(2, {0, 1, 2, 5, 6}); }

} // namespace

TEST(Codegen, UnrollFactorFromLifetimes) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  // Longest lifetime is vr1: [1,5] = 5 cycles; ceil(5/2) = 3 copies.
  EXPECT_EQ(mveUnrollFactor(G, figure1bSchedule()), 3);
}

TEST(Codegen, KernelHasUnrollTimesOps) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  PipelinedLoop L = emitPipelinedLoop(G, M, figure1bSchedule());
  EXPECT_EQ(L.II, 2);
  EXPECT_EQ(L.NumStages, 4); // Times 0..6 at II=2 span 4 stages.
  EXPECT_EQ(L.UnrollFactor, 3);
  EXPECT_EQ(L.Kernel.size(),
            static_cast<size_t>(G.numOperations()) * L.UnrollFactor);
  EXPECT_EQ(L.NumRegisterNames, G.numRegisters() * L.UnrollFactor);
}

TEST(Codegen, PrologueEpiloguePartition) {
  // Every operation instance of a full iteration appears exactly once
  // per section role: prologue(iter i) + kernel covers each op; epilogue
  // mirrors the prologue: prologue ops + epilogue ops = (SC-1) * N.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  PipelinedLoop L = emitPipelinedLoop(G, M, figure1bSchedule());
  int N = G.numOperations();
  EXPECT_EQ(L.Prologue.size() + L.Epilogue.size(),
            static_cast<size_t>((L.NumStages - 1) * N));
}

TEST(Codegen, KernelCyclesWithinBounds) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  PipelinedLoop L = emitPipelinedLoop(G, M, figure1bSchedule());
  long KernelLen = static_cast<long>(L.UnrollFactor) * L.II;
  for (const EmittedOp &E : L.Kernel) {
    EXPECT_GE(E.Cycle, 0);
    EXPECT_LT(E.Cycle, KernelLen);
  }
  // Each (cycle mod II) row carries the same ops as the MRT.
  std::map<long, int> OpsPerCycle;
  for (const EmittedOp &E : L.Kernel)
    ++OpsPerCycle[E.Cycle % L.II];
  EXPECT_EQ(OpsPerCycle[0], 3 * L.UnrollFactor); // MRT row 0 has 3 ops...
  EXPECT_EQ(OpsPerCycle[1], 2 * L.UnrollFactor); // ...row 1 has 2.
}

TEST(Codegen, TextRendersAllSections) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  PipelinedLoop L = emitPipelinedLoop(G, M, figure1bSchedule());
  std::string Text = L.text(G);
  EXPECT_NE(Text.find("prologue"), std::string::npos);
  EXPECT_NE(Text.find("kernel"), std::string::npos);
  EXPECT_NE(Text.find("epilogue"), std::string::npos);
  EXPECT_NE(Text.find("mult"), std::string::npos);
  EXPECT_NE(Text.find("v0."), std::string::npos); // MVE register names.
}

TEST(Codegen, RotatingNamesNeverClashWithinLifetime) {
  // With U = max ceil(lifetime/II), two live instances of the same
  // virtual register always map to different copies. Check on the paper
  // example: vr1 lifetime 5, U=3, instances i and i+1 and i+2 alive
  // simultaneously get copies i%3, (i+1)%3, (i+2)%3 - all distinct.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ModuloSchedule S = figure1bSchedule();
  int U = mveUnrollFactor(G, S);
  for (int Reg = 0; Reg < G.numRegisters(); ++Reg) {
    int Def = S.time(G.registers()[Reg].Def);
    int Kill = registerKillTime(G, S, Reg);
    int Overlap = (Kill - Def) / S.ii() + 1; // Simultaneously live copies.
    EXPECT_LE(Overlap, U) << "register " << Reg;
  }
}

class CodegenPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodegenPropertyTest, EmissionInvariantsOnRandomLoops) {
  MachineModel M = MachineModel::vliw2();
  Rng R(GetParam() * 13 + 1);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 10;
  DependenceGraph G = generateLoop(M, R, Opts);
  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  if (!H.Found)
    GTEST_SKIP();
  PipelinedLoop L = emitPipelinedLoop(G, M, H.Schedule);
  EXPECT_EQ(L.Kernel.size(),
            static_cast<size_t>(G.numOperations()) * L.UnrollFactor);
  EXPECT_EQ(L.Prologue.size() + L.Epilogue.size(),
            static_cast<size_t>((L.NumStages - 1) * G.numOperations()));
  // MVE bound: every register's overlap fits the unroll factor.
  for (int Reg = 0; Reg < G.numRegisters(); ++Reg) {
    int Def = H.Schedule.time(G.registers()[Reg].Def);
    int Kill = registerKillTime(G, H.Schedule, Reg);
    EXPECT_LE((Kill - Def) / H.Schedule.ii() + 1, L.UnrollFactor);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, CodegenPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));
