//===- tests/SupportTest.cpp - support library tests ----------------------===//

#include "support/Format.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace modsched;

TEST(SummaryStats, SingleValue) {
  SummaryStats S;
  S.add(42.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.min(), 42.0);
  EXPECT_DOUBLE_EQ(S.max(), 42.0);
  EXPECT_DOUBLE_EQ(S.median(), 42.0);
  EXPECT_DOUBLE_EQ(S.average(), 42.0);
  EXPECT_DOUBLE_EQ(S.freqOfMin(), 1.0);
}

TEST(SummaryStats, PaperStyleRow) {
  // Mimics a Table 1 row: many zeros, a few large values.
  SummaryStats S;
  for (int I = 0; I < 74; ++I)
    S.add(0.0);
  for (int I = 0; I < 26; ++I)
    S.add(100.0 + I);
  EXPECT_DOUBLE_EQ(S.min(), 0.0);
  EXPECT_NEAR(S.freqOfMin(), 0.74, 1e-12);
  EXPECT_DOUBLE_EQ(S.median(), 0.0);
  EXPECT_GT(S.average(), 0.0);
  EXPECT_DOUBLE_EQ(S.max(), 125.0);
}

TEST(SummaryStats, MedianEvenOdd) {
  SummaryStats S;
  S.add(1);
  S.add(3);
  EXPECT_DOUBLE_EQ(S.median(), 2.0);
  S.add(10);
  EXPECT_DOUBLE_EQ(S.median(), 3.0);
}

TEST(SummaryStats, InterleavedAddAndQuery) {
  SummaryStats S;
  S.add(5);
  EXPECT_DOUBLE_EQ(S.min(), 5.0);
  S.add(1); // Must re-sort lazily.
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  S.add(9);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.median(), 5.0);
}

TEST(MedianOf, Basic) {
  EXPECT_DOUBLE_EQ(medianOf({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(medianOf({4, 1, 2, 3}), 2.5);
}

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(Rng, RangesRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, CoversRange) {
  Rng R(99);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextInRange(0, 9));
  EXPECT_EQ(Seen.size(), 10u);
}

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter T;
  T.setHeader({"Measurements:", "min", "max"});
  T.addSection("NoObj:");
  T.addRow({"Variables", "4", "3880"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Measurements:"), std::string::npos);
  EXPECT_NE(Out.find("NoObj:"), std::string::npos);
  EXPECT_NE(Out.find("3880"), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(0.739, 1), "73.9%");
}

TEST(SummaryStats, FormatRowContainsAllFive) {
  SummaryStats S;
  S.add(0.0);
  S.add(10.0);
  std::string Row = S.formatRow();
  EXPECT_NE(Row.find("0.00"), std::string::npos);
  EXPECT_NE(Row.find("50.0%"), std::string::npos); // freq of min.
  EXPECT_NE(Row.find("5.00"), std::string::npos);  // median == average.
  EXPECT_NE(Row.find("10.00"), std::string::npos);
}

TEST(SummaryStats, EmptyFormat) {
  SummaryStats S;
  EXPECT_EQ(S.formatRow(), "(empty)");
  EXPECT_TRUE(S.empty());
}

TEST(SummaryStats, FormatRowRendersSampleCount) {
  SummaryStats S;
  S.add(1.0);
  S.add(2.0);
  S.add(3.0);
  EXPECT_NE(S.formatRow().find("(n=3)"), std::string::npos);
}

TEST(SummaryStats, StddevEmptyAndSingleAreZero) {
  SummaryStats Empty;
  EXPECT_DOUBLE_EQ(Empty.stddev(), 0.0);
  SummaryStats Single;
  Single.add(7.0);
  EXPECT_DOUBLE_EQ(Single.stddev(), 0.0);
}

TEST(SummaryStats, StddevEvenSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  SummaryStats S;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(V);
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryStats, PercentileSingleValue) {
  SummaryStats S;
  S.add(42.0);
  EXPECT_DOUBLE_EQ(S.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(S.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(S.percentile(100.0), 42.0);
}

TEST(SummaryStats, PercentileEvenSampleInterpolates) {
  SummaryStats S;
  for (double V : {10.0, 20.0, 30.0, 40.0})
    S.add(V);
  EXPECT_DOUBLE_EQ(S.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(S.percentile(100.0), 40.0);
  // Median of an even sample: interpolated between the middle pair.
  EXPECT_DOUBLE_EQ(S.percentile(50.0), S.median());
  // 25th percentile: rank 0.75 between 10 and 20.
  EXPECT_NEAR(S.percentile(25.0), 17.5, 1e-12);
}

TEST(SummaryStats, PercentileUnsortedInsertOrder) {
  SummaryStats S;
  for (double V : {9.0, 1.0, 5.0, 3.0, 7.0})
    S.add(V);
  EXPECT_DOUBLE_EQ(S.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(S.percentile(75.0), 7.0);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch W;
  double A = W.seconds();
  double B = W.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
  W.reset();
  EXPECT_GE(W.seconds(), 0.0);
}
