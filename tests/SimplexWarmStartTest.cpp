//===- tests/SimplexWarmStartTest.cpp - warm vs cold differential ---------===//
//
// Differential test of the warm-started dual simplex against the cold
// two-phase primal: on randomized bounded LPs, export the optimal basis,
// apply a branching-style bound tightening, and check that a warm
// re-solve from the parent basis agrees with a cold solve of the same
// child on both status and objective. This is exactly the re-solve
// pattern the branch-and-bound solver relies on for correctness.
//
//===----------------------------------------------------------------------===//

#include "lp/Model.h"
#include "lp/Simplex.h"
#include "lp/SolveContext.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace modsched;
using namespace modsched::lp;

namespace {

/// Builds a random bounded LP. Roughly half the instances are
/// 0-1-structured (coefficients in {-1, +1}, binary boxes) like the
/// paper's formulations; the rest use general small integer data.
Model randomModel(Rng &R) {
  Model M;
  int NumVars = static_cast<int>(R.nextInRange(3, 12));
  bool ZeroOne = R.nextBool(0.5);
  // Most models are anchored around a random point inside the box: each
  // constraint's RHS is offset from the anchor's activity so the parent
  // LP is guaranteed feasible (infeasible parents have no children to
  // differentiate on). A minority keep fully random RHS values so
  // infeasible parents and near-infeasible children stay covered.
  bool Anchored = R.nextBool(0.7);
  std::vector<double> Anchor;
  for (int V = 0; V < NumVars; ++V) {
    double Lo, Up;
    if (ZeroOne) {
      Lo = 0.0;
      Up = 1.0;
    } else {
      Lo = static_cast<double>(R.nextInRange(-5, 3));
      Up = Lo + static_cast<double>(R.nextInRange(0, 9));
    }
    double Obj = static_cast<double>(R.nextInRange(-5, 5));
    M.addVariable("x" + std::to_string(V), Lo, Up, Obj);
    Anchor.push_back(static_cast<double>(
        R.nextInRange(static_cast<int64_t>(Lo), static_cast<int64_t>(Up))));
  }
  int NumCons = static_cast<int>(R.nextInRange(2, 10));
  for (int C = 0; C < NumCons; ++C) {
    std::vector<Term> Terms;
    int NumTerms = static_cast<int>(R.nextInRange(1, std::min(NumVars, 6)));
    for (int T = 0; T < NumTerms; ++T) {
      int Var = static_cast<int>(R.nextBelow(NumVars));
      double Coeff = ZeroOne ? (R.nextBool(0.5) ? 1.0 : -1.0)
                             : static_cast<double>(R.nextInRange(-3, 3));
      if (Coeff != 0.0)
        Terms.push_back({Var, Coeff});
    }
    if (Terms.empty())
      continue;
    ConstraintSense Sense =
        C % 3 == 0 ? ConstraintSense::LE
                   : (C % 3 == 1 ? ConstraintSense::GE : ConstraintSense::EQ);
    double Rhs;
    if (Anchored) {
      double Activity = 0.0;
      for (const Term &T : Terms)
        Activity += T.second * Anchor[T.first];
      double Slack = static_cast<double>(R.nextInRange(0, 4));
      Rhs = Sense == ConstraintSense::LE   ? Activity + Slack
            : Sense == ConstraintSense::GE ? Activity - Slack
                                           : Activity;
    } else {
      Rhs = static_cast<double>(Sense == ConstraintSense::EQ
                                    ? R.nextInRange(-2, 2)
                                    : R.nextInRange(-6, 8));
    }
    M.addConstraint(std::move(Terms), Sense, Rhs);
  }
  return M;
}

/// Applies one branching-style tightening (x <= floor or x >= floor+1
/// around the parent's LP value) to a random variable. Returns false
/// when no variable admits a tightening that keeps its box non-empty.
bool tightenLikeBranch(const Model &M, const std::vector<double> &ParentX,
                       std::vector<double> &Lower,
                       std::vector<double> &Upper, Rng &R) {
  int NumVars = M.numVariables();
  int First = static_cast<int>(R.nextBelow(NumVars));
  for (int Step = 0; Step < NumVars; ++Step) {
    int Var = (First + Step) % NumVars;
    double X = ParentX[Var];
    double Floor = std::floor(X);
    bool Down = R.nextBool(0.5);
    for (int Side = 0; Side < 2; ++Side, Down = !Down) {
      if (Down && Floor < Upper[Var] && Floor >= Lower[Var]) {
        Upper[Var] = Floor;
        return true;
      }
      if (!Down && Floor + 1.0 > Lower[Var] && Floor + 1.0 <= Upper[Var]) {
        Lower[Var] = Floor + 1.0;
        return true;
      }
    }
  }
  return false;
}

struct DifferentialTally {
  int Models = 0;
  int Children = 0;
  int WarmStarted = 0;
  int OptimalAgreements = 0;
  int InfeasibleAgreements = 0;
};

/// Runs the cold-parent / tightened-children differential for one seed,
/// descending \p Depth levels (child-of-child re-solves exercise the
/// in-place tableau reuse path that branch-and-bound DFS hits).
void runDifferential(uint64_t Seed, int NumModels, int Depth,
                     DifferentialTally &Tally) {
  Rng R(Seed);
  for (int I = 0; I < NumModels; ++I) {
    Model M = randomModel(R);
    ++Tally.Models;

    SolveContext Ctx; // Owns the workspace of the warm solve chain.
    SimplexSolver Warm;
    std::vector<double> Lower, Upper;
    M.getBounds(Lower, Upper);
    LpResult Parent = Warm.solve(M, Lower, Upper, &Ctx);
    if (Parent.Status != LpStatus::Optimal || Parent.FinalBasis.empty())
      continue; // Infeasible / non-exportable parents have no children.

    Basis B = Parent.FinalBasis;
    std::vector<double> X = Parent.Values;
    for (int Level = 0; Level < Depth; ++Level) {
      if (!tightenLikeBranch(M, X, Lower, Upper, R))
        break;
      ++Tally.Children;

      LpResult WarmChild = Warm.solve(M, Lower, Upper, &Ctx, &B);
      SimplexSolver Cold;
      LpResult ColdChild = Cold.solve(M, Lower, Upper);

      ASSERT_NE(WarmChild.Status, LpStatus::IterationLimit)
          << "warm child hit the iteration limit (seed " << Seed << ")";
      ASSERT_NE(ColdChild.Status, LpStatus::IterationLimit)
          << "cold child hit the iteration limit (seed " << Seed << ")";
      ASSERT_EQ(WarmChild.Status, ColdChild.Status)
          << "status disagreement at seed " << Seed << " model " << I
          << " level " << Level << ":\n"
          << M.toString();
      if (WarmChild.WarmStarted)
        ++Tally.WarmStarted;
      if (WarmChild.Status == LpStatus::Optimal) {
        ++Tally.OptimalAgreements;
        EXPECT_NEAR(WarmChild.Objective, ColdChild.Objective, 1e-6)
            << "objective disagreement at seed " << Seed << " model " << I
            << " level " << Level << ":\n"
            << M.toString();
        std::string WhyNot;
        EXPECT_TRUE(M.isFeasible(WarmChild.Values, 1e-6, &WhyNot))
            << WhyNot << "\nat seed " << Seed << " model " << I;
      } else {
        ++Tally.InfeasibleAgreements;
        break; // Both proved the child infeasible; no deeper children.
      }
      if (WarmChild.FinalBasis.empty())
        break; // Cannot descend without an exportable basis.
      B = WarmChild.FinalBasis;
      X = WarmChild.Values;
    }
  }
}

TEST(SimplexWarmStart, DifferentialAgainstColdOnRandomLps) {
  DifferentialTally Tally;
  // ~100 random LPs as two independent streams, each descending up to
  // three branching levels below the parent.
  runDifferential(/*Seed=*/20260806, /*NumModels=*/50, /*Depth=*/3, Tally);
  runDifferential(/*Seed=*/97, /*NumModels=*/50, /*Depth=*/3, Tally);

  // The generator must actually produce solvable parents with children,
  // and the warm path must genuinely engage (not silently fall back to
  // the cold primal on every instance) for the differential to mean
  // anything.
  EXPECT_EQ(Tally.Models, 100);
  EXPECT_GE(Tally.Children, 60) << "generator produced too few children";
  EXPECT_GE(Tally.WarmStarted, Tally.Children / 2)
      << "warm starts fell back to cold too often";
  EXPECT_GT(Tally.OptimalAgreements, 0);
  EXPECT_GT(Tally.InfeasibleAgreements, 0)
      << "no infeasible children generated; infeasibility detection of "
         "the dual simplex is untested";
}

TEST(SimplexWarmStart, ReusesBasisAcrossBothChildren) {
  // The branch-and-bound pattern proper: one parent basis warm-starts
  // BOTH children (down: x <= floor, up: x >= floor + 1), in DFS order,
  // from one persistent workspace.
  Model M;
  int X = M.addVariable("x", 0, 10, -1.0);
  int Y = M.addVariable("y", 0, 10, -2.0);
  M.addConstraint({{X, 1.0}, {Y, 2.0}}, ConstraintSense::LE, 13.0);
  M.addConstraint({{X, 1.0}, {Y, -1.0}}, ConstraintSense::LE, 4.0);

  SolveContext Ctx;
  SimplexSolver S;
  std::vector<double> Lower, Upper;
  M.getBounds(Lower, Upper);
  LpResult Parent = S.solve(M, Lower, Upper, &Ctx);
  ASSERT_EQ(Parent.Status, LpStatus::Optimal);
  ASSERT_FALSE(Parent.FinalBasis.empty());
  Basis B = Parent.FinalBasis;

  // Down child: y <= 3.
  std::vector<double> Lo1 = Lower, Up1 = Upper;
  Up1[Y] = 3.0;
  LpResult Down = S.solve(M, Lo1, Up1, &Ctx, &B);
  SimplexSolver Cold;
  LpResult DownCold = Cold.solve(M, Lo1, Up1);
  ASSERT_EQ(Down.Status, LpStatus::Optimal);
  EXPECT_NEAR(Down.Objective, DownCold.Objective, 1e-9);

  // Up child: y >= 4, warm-started from the SAME parent basis even
  // though the workspace tableau has moved on to the down child.
  std::vector<double> Lo2 = Lower, Up2 = Upper;
  Lo2[Y] = 4.0;
  LpResult Up = S.solve(M, Lo2, Up2, &Ctx, &B);
  LpResult UpCold = Cold.solve(M, Lo2, Up2);
  ASSERT_EQ(Up.Status, UpCold.Status);
  ASSERT_EQ(Up.Status, LpStatus::Optimal);
  EXPECT_NEAR(Up.Objective, UpCold.Objective, 1e-9);
}

TEST(SimplexWarmStart, WarmSolveAfterInfeasibleTightening) {
  // Tightening that empties the feasible region: the dual simplex must
  // prove infeasibility, matching the cold phase-1 verdict.
  Model M;
  int X = M.addVariable("x", 0, 10, 1.0);
  int Y = M.addVariable("y", 0, 10, 1.0);
  M.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::GE, 8.0);

  SolveContext Ctx;
  SimplexSolver S;
  std::vector<double> Lower, Upper;
  M.getBounds(Lower, Upper);
  LpResult Parent = S.solve(M, Lower, Upper, &Ctx);
  ASSERT_EQ(Parent.Status, LpStatus::Optimal);
  ASSERT_FALSE(Parent.FinalBasis.empty());

  std::vector<double> Lo = Lower, Up = Upper;
  Up[X] = 3.0;
  Up[Y] = 3.0; // x + y <= 6 < 8: infeasible.
  LpResult Child = S.solve(M, Lo, Up, &Ctx, &Parent.FinalBasis);
  EXPECT_EQ(Child.Status, LpStatus::Infeasible);
  SimplexSolver Cold;
  EXPECT_EQ(Cold.solve(M, Lo, Up).Status, LpStatus::Infeasible);
}

} // namespace
