//===- tests/PaperClaimsTest.cpp - the paper's claims as assertions --------===//
//
// A miniature, deterministic version of the benchmark campaign: the
// paper's qualitative claims are encoded as test assertions over a small
// suite with NODE-limited (not time-limited) censoring, so the outcome
// is machine-independent:
//
//  C1 the structured formulation never needs more branch-and-bound
//     nodes in total than the traditional one (and needs strictly fewer
//     when the traditional count is nontrivial);
//  C2 structured coverage (loops solved within budget) is at least the
//     traditional coverage;
//  C3 both formulations agree on the minimum II wherever both conclude;
//  C4 both agree on the minimum register requirement (MinReg), and the
//     objective equals the recomputed MaxLive of the returned schedule.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"

#include "sched/RegisterPressure.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

struct MiniResult {
  bool Solved = false;
  int II = 0;
  long Nodes = 0;
  int MaxLive = 0;
  double Objective = 0.0;
};

std::vector<MiniResult> runAll(const MachineModel &M,
                               const std::vector<DependenceGraph> &Suite,
                               Objective Obj, DependenceStyle Dep) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Obj;
  Opts.Formulation.DepStyle = Dep;
  Opts.TimeLimitSeconds = 1e9; // Deterministic: budget by nodes only.
  Opts.NodeLimit = 3000;
  OptimalModuloScheduler Sched(M, Opts);
  std::vector<MiniResult> Out;
  for (const DependenceGraph &G : Suite) {
    ScheduleResult R = Sched.schedule(G);
    MiniResult Mini;
    Mini.Solved = R.Found;
    Mini.Nodes = R.Nodes;
    if (R.Found) {
      Mini.II = R.II;
      Mini.Objective = R.SecondaryObjective;
      Mini.MaxLive = computeRegisterPressure(G, R.Schedule).MaxLive;
    }
    Out.push_back(Mini);
  }
  return Out;
}

std::vector<DependenceGraph> miniSuite(const MachineModel &M) {
  std::vector<DependenceGraph> Suite;
  Rng R(987654);
  for (int I = 0; I < 24; ++I) {
    SyntheticOptions Opts;
    Opts.MinOps = 3;
    Opts.MaxOps = 11;
    Suite.push_back(generateLoop(M, R, Opts));
  }
  return Suite;
}

} // namespace

TEST(PaperClaims, StructuredDominatesTraditional) {
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = miniSuite(M);

  for (Objective Obj : {Objective::None, Objective::MinReg}) {
    std::vector<MiniResult> Trad =
        runAll(M, Suite, Obj, DependenceStyle::Traditional);
    std::vector<MiniResult> Struct =
        runAll(M, Suite, Obj, DependenceStyle::Structured);

    long TradNodes = 0, StructNodes = 0;
    int TradSolved = 0, StructSolved = 0;
    for (size_t I = 0; I < Suite.size(); ++I) {
      TradSolved += Trad[I].Solved;
      StructSolved += Struct[I].Solved;
      if (!Trad[I].Solved || !Struct[I].Solved)
        continue;
      TradNodes += Trad[I].Nodes;
      StructNodes += Struct[I].Nodes;
      // C3: agreement on minimum II.
      EXPECT_EQ(Trad[I].II, Struct[I].II)
          << toString(Obj) << " loop " << I;
      if (Obj == Objective::MinReg) {
        // C4: agreement on the optimal register requirement.
        EXPECT_NEAR(Trad[I].Objective, Struct[I].Objective, 1e-6)
            << "loop " << I;
        EXPECT_EQ(Trad[I].MaxLive,
                  static_cast<int>(Trad[I].Objective + 0.5));
        EXPECT_EQ(Struct[I].MaxLive,
                  static_cast<int>(Struct[I].Objective + 0.5));
      }
    }
    // C2: coverage.
    EXPECT_GE(StructSolved, TradSolved) << toString(Obj);
    // C1: node counts on the commonly solved subset.
    EXPECT_LE(StructNodes, TradNodes) << toString(Obj);
    if (TradNodes > 50) {
      EXPECT_LT(StructNodes, TradNodes) << toString(Obj);
    }
  }
}

TEST(PaperClaims, RootSolveFractionHigherWhenStructured) {
  // Paper Table 1 vs 2 (NoObj): 74.0% of loops need zero nodes with the
  // structured constraints, vs 37.4% traditionally.
  MachineModel M = MachineModel::cydraLike();
  std::vector<DependenceGraph> Suite = miniSuite(M);
  std::vector<MiniResult> Trad =
      runAll(M, Suite, Objective::None, DependenceStyle::Traditional);
  std::vector<MiniResult> Struct =
      runAll(M, Suite, Objective::None, DependenceStyle::Structured);
  int TradZero = 0, StructZero = 0, Both = 0;
  for (size_t I = 0; I < Suite.size(); ++I) {
    if (!Trad[I].Solved || !Struct[I].Solved)
      continue;
    ++Both;
    TradZero += Trad[I].Nodes == 0;
    StructZero += Struct[I].Nodes == 0;
  }
  ASSERT_GT(Both, 10);
  EXPECT_GE(StructZero, TradZero);
}
