//===- tests/SlackSchedulerTest.cpp - Huff slack scheduler tests -----------===//

#include "heuristic/SlackScheduler.h"

#include "heuristic/IterativeModuloScheduler.h"
#include "sched/Mii.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

TEST(SlackScheduler, SchedulesPaperExample1AtMii) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SlackScheduler Sched(M);
  SlackResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Mii, 2);
  EXPECT_EQ(R.II, 2);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(SlackScheduler, AllKernelsAllMachines) {
  for (MachineModel M : {MachineModel::example3(), MachineModel::vliw2(),
                         MachineModel::cydraLike()}) {
    for (const DependenceGraph &G : allKernels(M)) {
      SlackScheduler Sched(M);
      SlackResult R = Sched.schedule(G);
      ASSERT_TRUE(R.Found) << M.name() << "/" << G.name();
      EXPECT_GE(R.II, R.Mii);
      EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value())
          << M.name() << "/" << G.name();
    }
  }
}

TEST(SlackScheduler, RespectsRecurrences) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = secondOrderRecurrence(M);
  SlackScheduler Sched(M);
  SlackResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_GE(R.II, 6); // mul(4)+add(1)+add(1) over distance 1.
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(SlackScheduler, LifetimeSensitivityHelpsOnKernels) {
  // On the kernel library, the lifetime-sensitive scheduler should
  // accumulate no more total lifetime than plain IMS (allowing slack
  // for individual losses).
  MachineModel M = MachineModel::example3();
  long SlackTotal = 0, ImsTotal = 0;
  int Compared = 0;
  for (const DependenceGraph &G : allKernels(M)) {
    SlackScheduler SSched(M);
    IterativeModuloScheduler ISched(M);
    SlackResult SR = SSched.schedule(G);
    ImsResult IR = ISched.schedule(G);
    if (!SR.Found || !IR.Found || SR.II != IR.II)
      continue;
    ++Compared;
    SlackTotal += computeRegisterPressure(G, SR.Schedule).TotalLifetime;
    ImsTotal += computeRegisterPressure(G, IR.Schedule).TotalLifetime;
  }
  ASSERT_GT(Compared, 5);
  EXPECT_LE(SlackTotal, ImsTotal * 11 / 10);
}

class SlackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlackPropertyTest, RandomLoopsScheduleValidly) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 53 + 29);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 14;
  DependenceGraph G = generateLoop(M, R, Opts);
  SlackScheduler Sched(M);
  SlackResult Result = Sched.schedule(G);
  if (!Result.Found)
    GTEST_SKIP() << "budget exhausted";
  EXPECT_GE(Result.II, Result.Mii);
  EXPECT_FALSE(verifySchedule(G, M, Result.Schedule).has_value())
      << G.toString();
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, SlackPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));
