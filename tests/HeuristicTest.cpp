//===- tests/HeuristicTest.cpp - IMS + stage scheduling tests --------------===//

#include "heuristic/IterativeModuloScheduler.h"
#include "heuristic/StageScheduler.h"

#include "sched/Mii.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;

TEST(Ims, SchedulesPaperExample1AtMii) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  IterativeModuloScheduler Sched(M);
  ImsResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Mii, 2);
  EXPECT_EQ(R.II, 2);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(Ims, AllKernelsAllMachines) {
  for (MachineModel M : {MachineModel::example3(), MachineModel::vliw2(),
                         MachineModel::cydraLike()}) {
    for (const DependenceGraph &G : allKernels(M)) {
      IterativeModuloScheduler Sched(M);
      ImsResult R = Sched.schedule(G);
      ASSERT_TRUE(R.Found) << M.name() << "/" << G.name();
      EXPECT_GE(R.II, R.Mii);
      EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value())
          << M.name() << "/" << G.name();
    }
  }
}

TEST(Ims, RespectsRecurrences) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = secondOrderRecurrence(M);
  IterativeModuloScheduler Sched(M);
  ImsResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  // x[i] = a*x[i-1] + ...: cycle mul(4) -> add(1) -> add(1) back to mul,
  // distance 1 => RecMII = 6.
  EXPECT_GE(R.II, 6);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(StageScheduler, NeverWorsensAndKeepsRows) {
  MachineModel M = MachineModel::example3();
  for (const DependenceGraph &G : allKernels(M)) {
    IterativeModuloScheduler Sched(M);
    ImsResult R = Sched.schedule(G);
    ASSERT_TRUE(R.Found) << G.name();
    RegisterPressure Before = computeRegisterPressure(G, R.Schedule);
    ModuloSchedule Improved = stageSchedule(G, R.Schedule);
    RegisterPressure After = computeRegisterPressure(G, Improved);
    EXPECT_LE(After.TotalLifetime, Before.TotalLifetime) << G.name();
    EXPECT_FALSE(verifySchedule(G, M, Improved).has_value()) << G.name();
    for (int Op = 0; Op < G.numOperations(); ++Op)
      EXPECT_EQ(Improved.row(Op), R.Schedule.row(Op));
  }
}

TEST(StageScheduler, MaxLiveMetricHelps) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = livermore1(M);
  IterativeModuloScheduler Sched(M);
  ImsResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  StageSchedulerOptions Opts;
  Opts.Metric = StageMetric::MaxLive;
  ModuloSchedule Improved = stageSchedule(G, R.Schedule, Opts);
  EXPECT_LE(computeRegisterPressure(G, Improved).MaxLive,
            computeRegisterPressure(G, R.Schedule).MaxLive);
  EXPECT_FALSE(verifySchedule(G, M, Improved).has_value());
}

TEST(Ims, EvictionPathOnTightMachine) {
  // A single-FU machine forces resource conflicts: the scheduler must
  // exercise forced placement + eviction and still terminate with a
  // valid schedule (or fail cleanly within budget).
  MachineModel M;
  M.setName("one-fu");
  int Fu = M.addResource("fu", 1);
  M.addOpClass(opclasses::Load, 2, {{Fu, 0}});
  M.addOpClass(opclasses::Store, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Add, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Sub, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Mul, 3, {{Fu, 0}});
  M.addOpClass(opclasses::Div, 6, {{Fu, 0}});
  M.addOpClass(opclasses::Copy, 1, {{Fu, 0}});
  M.addOpClass(opclasses::Branch, 1, {{Fu, 0}});

  DependenceGraph G = paperExample1(M);
  IterativeModuloScheduler Sched(M);
  ImsResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_GE(R.II, 5); // 5 ops on 1 FU.
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(Ims, BudgetZeroFailsCleanly) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ImsOptions Opts;
  Opts.BudgetRatio = 0; // Budget = N steps: barely enough or not.
  Opts.MaxIiIncrease = 0;
  IterativeModuloScheduler Sched(M, Opts);
  ImsResult R = Sched.schedule(G);
  if (R.Found)
    EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(StageScheduler, FixpointIsStable) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = stencil3(M);
  IterativeModuloScheduler Sched(M);
  ImsResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  ModuloSchedule Once = stageSchedule(G, R.Schedule);
  ModuloSchedule Twice = stageSchedule(G, Once);
  EXPECT_EQ(computeRegisterPressure(G, Once).TotalLifetime,
            computeRegisterPressure(G, Twice).TotalLifetime);
}
