//===- tests/PropertyTest.cpp - randomized cross-validation ----------------===//
//
// Property tests over seeded random loops: the independent implementations
// in this repo (traditional ILP, structured ILP, IMS heuristic, schedule
// verifier, register-pressure computation) must agree with each other on
// every randomly generated instance.
//
//===----------------------------------------------------------------------===//

#include "heuristic/IterativeModuloScheduler.h"
#include "heuristic/StageScheduler.h"
#include "ilp/BranchAndBound.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/Mii.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;
using namespace modsched::ilp;

namespace {

SyntheticOptions smallLoopOptions() {
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 8;
  return Opts;
}

SchedulerOptions schedOpts(Objective Obj, DependenceStyle Dep) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Obj;
  Opts.Formulation.DepStyle = Dep;
  Opts.TimeLimitSeconds = 20.0;
  return Opts;
}

} // namespace

class SeededLoopTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededLoopTest, FormulationsAgreeOnMinimumIi) {
  MachineModel M = MachineModel::example3();
  Rng R(GetParam());
  DependenceGraph G = generateLoop(M, R, smallLoopOptions());

  OptimalModuloScheduler Trad(
      M, schedOpts(Objective::None, DependenceStyle::Traditional));
  OptimalModuloScheduler Struct(
      M, schedOpts(Objective::None, DependenceStyle::Structured));
  ScheduleResult A = Trad.schedule(G);
  ScheduleResult B = Struct.schedule(G);
  ASSERT_TRUE(A.Found && B.Found) << G.toString();
  EXPECT_EQ(A.II, B.II) << G.toString();
  EXPECT_FALSE(verifySchedule(G, M, A.Schedule).has_value());
  EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value());
}

TEST_P(SeededLoopTest, MinRegAgreesAcrossStylesAndMatchesPressure) {
  MachineModel M = MachineModel::vliw2();
  Rng R(GetParam() * 977 + 5);
  SyntheticOptions LoopOpts = smallLoopOptions();
  LoopOpts.MaxOps = 6; // The traditional formulation is slow by design.
  DependenceGraph G = generateLoop(M, R, LoopOpts);

  OptimalModuloScheduler Trad(
      M, schedOpts(Objective::MinReg, DependenceStyle::Traditional));
  OptimalModuloScheduler Struct(
      M, schedOpts(Objective::MinReg, DependenceStyle::Structured));
  ScheduleResult A = Trad.schedule(G);
  ScheduleResult B = Struct.schedule(G);
  if (A.TimedOut || B.TimedOut)
    GTEST_SKIP() << "budget expired (expected occasionally for the "
                    "traditional formulation)";
  ASSERT_TRUE(A.Found && B.Found) << G.toString();
  EXPECT_EQ(A.II, B.II);
  EXPECT_NEAR(A.SecondaryObjective, B.SecondaryObjective, 1e-6)
      << G.toString();
  // The ILP objective must equal the independently computed MaxLive of
  // the decoded schedule.
  EXPECT_EQ(computeRegisterPressure(G, A.Schedule).MaxLive,
            static_cast<int>(A.SecondaryObjective + 0.5));
  EXPECT_EQ(computeRegisterPressure(G, B.Schedule).MaxLive,
            static_cast<int>(B.SecondaryObjective + 0.5));
}

TEST_P(SeededLoopTest, OptimalIiNeverWorseThanHeuristic) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 31 + 17);
  DependenceGraph G = generateLoop(M, R, smallLoopOptions());

  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  OptimalModuloScheduler Opt(
      M, schedOpts(Objective::None, DependenceStyle::Structured));
  ScheduleResult O = Opt.schedule(G);
  ASSERT_TRUE(O.Found) << G.toString();
  if (H.Found) {
    EXPECT_LE(O.II, H.II) << G.toString();
  }
  EXPECT_GE(O.II, O.Mii);
}

TEST_P(SeededLoopTest, MinRegNeverAboveHeuristicPressure) {
  MachineModel M = MachineModel::example3();
  Rng R(GetParam() * 131 + 1);
  DependenceGraph G = generateLoop(M, R, smallLoopOptions());

  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  OptimalModuloScheduler Opt(
      M, schedOpts(Objective::MinReg, DependenceStyle::Structured));
  ScheduleResult O = Opt.schedule(G);
  ASSERT_TRUE(O.Found) << G.toString();
  if (!H.Found || H.II != O.II)
    return; // Register comparison only meaningful at equal II.
  EXPECT_LE(computeRegisterPressure(G, O.Schedule).MaxLive,
            computeRegisterPressure(G, H.Schedule).MaxLive)
      << G.toString();
}

TEST_P(SeededLoopTest, StageSchedulingPreservesValidity) {
  MachineModel M = MachineModel::vliw2();
  Rng R(GetParam() * 7919 + 3);
  DependenceGraph G = generateLoop(M, R, smallLoopOptions());
  IterativeModuloScheduler Ims(M);
  ImsResult H = Ims.schedule(G);
  if (!H.Found)
    return;
  ModuloSchedule Improved = stageSchedule(G, H.Schedule);
  EXPECT_FALSE(verifySchedule(G, M, Improved).has_value()) << G.toString();
  EXPECT_LE(computeRegisterPressure(G, Improved).TotalLifetime,
            computeRegisterPressure(G, H.Schedule).TotalLifetime);
}

TEST_P(SeededLoopTest, LooseStructuredAgreesWithStructured) {
  MachineModel M = MachineModel::example3();
  Rng R(GetParam() * 271 + 9);
  DependenceGraph G = generateLoop(M, R, smallLoopOptions());
  OptimalModuloScheduler A(
      M, schedOpts(Objective::None, DependenceStyle::Structured));
  OptimalModuloScheduler B(
      M, schedOpts(Objective::None, DependenceStyle::StructuredLoose));
  ScheduleResult RA = A.schedule(G);
  ScheduleResult RB = B.schedule(G);
  ASSERT_TRUE(RA.Found && RB.Found);
  EXPECT_EQ(RA.II, RB.II) << G.toString();
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, SeededLoopTest,
                         ::testing::Range<uint64_t>(0, 25));

// --- Random MIPs cross-checked against brute force -----------------------

class SeededMipTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededMipTest, BranchAndBoundMatchesBruteForce) {
  Rng R(GetParam() * 5 + 1);
  // Random small integer program: 4 vars in [0,3], 3 random LE
  // constraints, random objective.
  lp::Model M;
  const int N = 4, Range = 3;
  for (int I = 0; I < N; ++I)
    M.addVariable("x" + std::to_string(I), 0, Range,
                  double(R.nextInRange(-5, 5)), lp::VarKind::Integer);
  for (int C = 0; C < 3; ++C) {
    std::vector<lp::Term> Terms;
    for (int I = 0; I < N; ++I)
      Terms.push_back({I, double(R.nextInRange(-3, 4))});
    M.addConstraint(Terms, lp::ConstraintSense::LE,
                    double(R.nextInRange(0, 12)));
  }

  // Brute force over (Range+1)^N points.
  double Best = 1e300;
  bool AnyFeasible = false;
  int Total = 1;
  for (int I = 0; I < N; ++I)
    Total *= Range + 1;
  for (int Point = 0; Point < Total; ++Point) {
    std::vector<double> X(N);
    int P = Point;
    for (int I = 0; I < N; ++I) {
      X[I] = P % (Range + 1);
      P /= Range + 1;
    }
    if (!M.isFeasible(X))
      continue;
    AnyFeasible = true;
    Best = std::min(Best, M.evaluateObjective(X));
  }

  MipResult Result = MipSolver().solve(M);
  if (!AnyFeasible) {
    EXPECT_EQ(Result.Status, MipStatus::Infeasible);
    return;
  }
  ASSERT_EQ(Result.Status, MipStatus::Optimal) << M.toString();
  EXPECT_NEAR(Result.Objective, Best, 1e-6) << M.toString();
}

INSTANTIATE_TEST_SUITE_P(RandomMips, SeededMipTest,
                         ::testing::Range<uint64_t>(0, 40));
