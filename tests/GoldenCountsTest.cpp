//===- tests/GoldenCountsTest.cpp - formulation size regression pins -------===//
//
// Pins the variable/constraint counts of every formulation variant to
// first-principles formulas, so accidental changes to constraint
// emission are caught immediately. Counts are "prior to any
// simplifications", exactly what the paper's Tables 1-2 report.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/Formulation.h"

#include "sched/Mii.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

/// Resource types actually modeled: total usage exceeds multiplicity.
int activeResourceTypes(const DependenceGraph &G, const MachineModel &M) {
  std::vector<int> Uses(M.numResources(), 0);
  for (const Operation &Op : G.operations())
    for (const ResourceUsage &U : M.opClass(Op.OpClass).Usages)
      ++Uses[U.Resource];
  int Active = 0;
  for (int R = 0; R < M.numResources(); ++R)
    Active += Uses[R] > M.resource(R).Count;
  return Active;
}

int totalUses(const DependenceGraph &G) {
  int Uses = 0;
  for (const VirtualRegister &R : G.registers())
    Uses += static_cast<int>(R.Uses.size());
  return Uses;
}

struct Sizes {
  int Vars;
  int Cons;
};

Sizes sizesOf(const DependenceGraph &G, const MachineModel &M, int II,
              Objective Obj, DependenceStyle Dep,
              ObjectiveStyle ObjStyle = ObjectiveStyle::Structured) {
  FormulationOptions Opts;
  Opts.Obj = Obj;
  Opts.DepStyle = Dep;
  Opts.ObjStyle = ObjStyle;
  Formulation F(G, M, II, Opts);
  EXPECT_TRUE(F.valid());
  return {F.model().numVariables(), F.model().numConstraints()};
}

} // namespace

class GoldenCounts : public ::testing::TestWithParam<int> {
protected:
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = allKernels(M)[GetParam()];
  int N = G.numOperations();
  int E = G.numSchedEdges();
  int R = G.numRegisters();
  int U = totalUses(G);
  int Q = activeResourceTypes(G, M);
  int II = mii(G, M);
};

TEST_P(GoldenCounts, NoObjStructured) {
  Sizes S = sizesOf(G, M, II, Objective::None, DependenceStyle::Structured);
  EXPECT_EQ(S.Vars, II * N + N);
  EXPECT_EQ(S.Cons, N + E * II + Q * II);
}

TEST_P(GoldenCounts, NoObjTraditional) {
  Sizes S =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Traditional);
  EXPECT_EQ(S.Vars, II * N + N);
  EXPECT_EQ(S.Cons, N + E + Q * II);
}

TEST_P(GoldenCounts, MinRegStructured) {
  // Adds per register: II kill-row binaries + 1 kill stage + 1 kill
  // assignment + (1 def-edge + uses) * II kill dependence rows; plus the
  // MaxLive variable and II MaxLive rows.
  Sizes Base =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Structured);
  Sizes S = sizesOf(G, M, II, Objective::MinReg,
                    DependenceStyle::Structured);
  EXPECT_EQ(S.Vars, Base.Vars + R * (II + 1) + 1);
  EXPECT_EQ(S.Cons, Base.Cons + R + (R + U) * II + II);
}

TEST_P(GoldenCounts, MinRegTraditional) {
  // Same objective machinery, but kill dependences are single rows.
  Sizes Base =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Traditional);
  Sizes S = sizesOf(G, M, II, Objective::MinReg,
                    DependenceStyle::Traditional);
  EXPECT_EQ(S.Vars, Base.Vars + R * (II + 1) + 1);
  EXPECT_EQ(S.Cons, Base.Cons + R + (R + U) + II);
}

TEST_P(GoldenCounts, MinBuffStructured) {
  // One buffer variable per register; II rows per use; no kill ops.
  Sizes Base =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Structured);
  Sizes S = sizesOf(G, M, II, Objective::MinBuff,
                    DependenceStyle::Structured);
  EXPECT_EQ(S.Vars, Base.Vars + R);
  EXPECT_EQ(S.Cons, Base.Cons + U * II);
}

TEST_P(GoldenCounts, MinBuffTraditional) {
  Sizes Base =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Structured);
  Sizes S =
      sizesOf(G, M, II, Objective::MinBuff, DependenceStyle::Structured,
              ObjectiveStyle::Traditional);
  EXPECT_EQ(S.Vars, Base.Vars + R);
  EXPECT_EQ(S.Cons, Base.Cons + U); // One row per use.
}

TEST_P(GoldenCounts, MinLifeStructured) {
  // Kill machinery, no auxiliary variables (objective-only encoding).
  Sizes Base =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Structured);
  Sizes S = sizesOf(G, M, II, Objective::MinLife,
                    DependenceStyle::Structured);
  EXPECT_EQ(S.Vars, Base.Vars + R * (II + 1));
  EXPECT_EQ(S.Cons, Base.Cons + R + (R + U) * II);
}

TEST_P(GoldenCounts, MinLifeTraditional) {
  // Kill machinery + one lifetime variable and defining row per register.
  Sizes Base =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Structured);
  Sizes S =
      sizesOf(G, M, II, Objective::MinLife, DependenceStyle::Structured,
              ObjectiveStyle::Traditional);
  EXPECT_EQ(S.Vars, Base.Vars + R * (II + 1) + R);
  EXPECT_EQ(S.Cons, Base.Cons + R + (R + U) * II + R);
}

TEST_P(GoldenCounts, MinSl) {
  // Sink: II row binaries + 1 stage + 1 assignment + N * II dependences.
  Sizes Base =
      sizesOf(G, M, II, Objective::None, DependenceStyle::Structured);
  Sizes S = sizesOf(G, M, II, Objective::MinSL,
                    DependenceStyle::Structured);
  EXPECT_EQ(S.Vars, Base.Vars + II + 1);
  EXPECT_EQ(S.Cons, Base.Cons + 1 + N * II);
}

// Kernels 0..9 cover the original library (small to medium sizes).
INSTANTIATE_TEST_SUITE_P(Kernels, GoldenCounts, ::testing::Range(0, 10));
