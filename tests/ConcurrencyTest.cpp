//===- tests/ConcurrencyTest.cpp - reentrant solve pipeline tests ----------===//
//
// Tests for the concurrency layer introduced with SolveContext: cross-
// thread cancellation of a running branch-and-bound search, deadline /
// node-budget attribution, telemetry shard merging across a ThreadPool,
// and a differential of the ParallelRace II search against the
// Sequential baseline (same II, same secondary objective, same
// verdicts — the race must be an implementation detail, never a
// semantic change).
//
//===----------------------------------------------------------------------===//

#include "ilp/BranchAndBound.h"
#include "ilpsched/IiSearch.h"
#include "ilpsched/OptimalScheduler.h"
#include "lp/SolveContext.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "support/Cancellation.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace modsched;
using namespace modsched::ilp;

namespace {

/// A deterministically infeasible market-split style 0-1 program whose
/// LP relaxation is feasible: every coefficient is even while every
/// right-hand side is odd, so no integral point exists, but interval
/// propagation and LP bounds cannot see the parity argument — the
/// branch-and-bound search has to grind through an exponential tree.
/// Perfect fodder for cancellation tests: it runs "forever" yet every
/// node is cheap, so the search polls its budgets constantly.
lp::Model hardParityModel(int NumVars, int NumCons) {
  lp::Model M;
  Rng R(0xC0FFEE);
  for (int V = 0; V < NumVars; ++V)
    M.addVariable("x" + std::to_string(V), 0.0, 1.0,
                  /*Objective=*/1.0, lp::VarKind::Integer);
  for (int C = 0; C < NumCons; ++C) {
    std::vector<lp::Term> Terms;
    int64_t Sum = 0;
    for (int V = 0; V < NumVars; ++V) {
      int64_t Coeff = 2 * R.nextInRange(5, 49); // Always even.
      Terms.push_back({V, static_cast<double>(Coeff)});
      Sum += Coeff;
    }
    int64_t Rhs = Sum / 2;
    if (Rhs % 2 == 0)
      ++Rhs; // Always odd: even * {0,1} can never sum to it.
    M.addConstraint(std::move(Terms), lp::ConstraintSense::EQ,
                    static_cast<double>(Rhs));
  }
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cross-thread cancellation of a running MIP solve
//===----------------------------------------------------------------------===//

TEST(Concurrency, CancellationStopsBranchAndBoundMidSearch) {
  lp::Model M = hardParityModel(/*NumVars=*/28, /*NumCons=*/4);

  std::atomic<int64_t> NodesSeen{0};
  MipOptions Opts; // No budgets: only cancellation can stop this.
  Opts.Observer = [&NodesSeen](const BbEventInfo &Info) {
    NodesSeen.store(Info.Node, std::memory_order_relaxed);
  };
  MipSolver Solver(Opts);

  CancellationSource Source;
  lp::SolveContext Ctx;
  Ctx.Cancel = Source.token();

  MipResult R;
  std::atomic<bool> Done{false};
  std::thread Worker([&]() {
    telemetry::ThreadShardScope Shard; // Every non-main solver thread.
    R = Solver.solve(M, Ctx);
    Done.store(true, std::memory_order_release);
  });

  // Wait until the search is demonstrably inside the tree, then pull
  // the plug from this (different) thread.
  while (NodesSeen.load(std::memory_order_relaxed) < 8 &&
         !Done.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Source.cancel();
  Worker.join();

  ASSERT_TRUE(Done.load());
  // The instance is infeasible by parity, so no solver outcome other
  // than Cancelled is acceptable within any realistic test runtime.
  EXPECT_EQ(R.Status, MipStatus::Cancelled);
  EXPECT_TRUE(R.Cancelled);
  EXPECT_FALSE(R.HasSolution);
  EXPECT_FALSE(R.HitNodeLimit);
  EXPECT_GE(R.Nodes, 1);
}

TEST(Concurrency, ExpiredContextDeadlineReportsTimeLimit) {
  lp::Model M = hardParityModel(/*NumVars=*/20, /*NumCons=*/3);
  lp::SolveContext Ctx;
  Ctx.DeadlineSeconds = monotonicSeconds() - 1.0; // Already in the past.
  MipResult R = MipSolver().solve(M, Ctx);
  EXPECT_EQ(R.Status, MipStatus::Limit);
  EXPECT_TRUE(R.HitTimeLimit);
  EXPECT_FALSE(R.HitNodeLimit);
  EXPECT_FALSE(R.Cancelled);
  EXPECT_EQ(R.Nodes, 0);
}

TEST(Concurrency, NodeBudgetIsAttributedToHitNodeLimit) {
  lp::Model M = hardParityModel(/*NumVars=*/20, /*NumCons=*/3);
  MipOptions Opts;
  Opts.NodeLimit = 16;
  MipResult R = MipSolver(Opts).solve(M);
  EXPECT_EQ(R.Status, MipStatus::Limit);
  EXPECT_TRUE(R.HitNodeLimit);
  EXPECT_FALSE(R.HitTimeLimit);
  EXPECT_FALSE(R.Cancelled);
  EXPECT_EQ(R.Nodes, 16);
}

//===----------------------------------------------------------------------===//
// Telemetry shard merging
//===----------------------------------------------------------------------===//

namespace {
telemetry::Counter StatTestAdds("tests", "concurrency.adds",
                                "ConcurrencyTest shard-merge counter");
} // namespace

TEST(Concurrency, TelemetryShardsMergeAcrossThreadPool) {
  const int64_t Before = StatTestAdds.value();
  {
    ThreadPool Pool(4);
    for (int I = 0; I < 64; ++I)
      Pool.submit([]() { StatTestAdds += 1; });
    Pool.wait();
    // Mid-life flush: deltas become visible without ending the thread.
    for (int I = 0; I < 4; ++I)
      Pool.submit([]() {
        StatTestAdds += 1;
        telemetry::flushThreadShard();
      });
    Pool.wait();
  } // Pool destruction merges every remaining worker shard.
  EXPECT_EQ(StatTestAdds.value() - Before, 68);
}

//===----------------------------------------------------------------------===//
// ParallelRace vs Sequential differential
//===----------------------------------------------------------------------===//

namespace {

SchedulerOptions raceOpts(Objective Obj, IiSearchKind Kind, int Jobs) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Obj;
  Opts.Formulation.DepStyle = DependenceStyle::Structured;
  Opts.TimeLimitSeconds = 30.0;
  Opts.Search = Kind;
  Opts.SearchJobs = Jobs;
  return Opts;
}

} // namespace

class RaceDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaceDifferentialTest, MatchesSequentialVerdicts) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 7919 + 13);
  SyntheticOptions SOpts;
  SOpts.MinOps = 3;
  SOpts.MaxOps = 9;
  DependenceGraph G = generateLoop(M, R, SOpts);

  OptimalModuloScheduler Seq(
      M, raceOpts(Objective::MinReg, IiSearchKind::Sequential, 1));
  OptimalModuloScheduler Race(
      M, raceOpts(Objective::MinReg, IiSearchKind::ParallelRace, 3));
  ScheduleResult A = Seq.schedule(G);
  ScheduleResult B = Race.schedule(G);
  if (A.TimedOut || B.TimedOut || A.NodeLimitHit || B.NodeLimitHit)
    GTEST_SKIP() << "censored run; verdict comparison is meaningless";

  EXPECT_EQ(A.Found, B.Found) << G.toString();
  EXPECT_EQ(A.Mii, B.Mii);
  if (A.Found && B.Found) {
    EXPECT_EQ(A.II, B.II) << G.toString();
    EXPECT_NEAR(A.SecondaryObjective, B.SecondaryObjective, 1e-6)
        << G.toString();
    EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value());
    EXPECT_EQ(computeRegisterPressure(G, B.Schedule).MaxLive,
              computeRegisterPressure(G, A.Schedule).MaxLive);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceDifferentialTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(Concurrency, ParallelRaceCancelsLosersCleanly) {
  // secondOrderRecurrence on the cydra-like machine needs II > MII, so
  // a 4-wide race genuinely overlaps feasible and infeasible IIs and a
  // winner genuinely cancels higher-II siblings.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = secondOrderRecurrence(M);

  OptimalModuloScheduler Seq(
      M, raceOpts(Objective::None, IiSearchKind::Sequential, 1));
  OptimalModuloScheduler Race(
      M, raceOpts(Objective::None, IiSearchKind::ParallelRace, 4));
  ScheduleResult A = Seq.schedule(G);
  ScheduleResult B = Race.schedule(G);

  ASSERT_TRUE(A.Found);
  ASSERT_TRUE(B.Found);
  EXPECT_EQ(A.II, B.II);
  EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value());

  for (const IiAttempt &Attempt : B.Attempts) {
    if (Attempt.II < B.II) {
      // Everything below the committed II was genuinely refuted, never
      // cancelled (cancellation only ever targets higher IIs).
      EXPECT_FALSE(Attempt.Scheduled);
      EXPECT_FALSE(Attempt.Cancelled);
    }
    if (Attempt.Cancelled) {
      EXPECT_GT(Attempt.II, B.II);
      // A cancelled attempt never half-delivers: no schedule, no
      // infeasibility verdict.
      EXPECT_FALSE(Attempt.Scheduled);
      EXPECT_EQ(Attempt.Status, MipStatus::Cancelled);
    }
  }
}

TEST(Concurrency, RaceFactoryDegeneratesToSequential) {
  EXPECT_STREQ(
      makeIiSearchStrategy(IiSearchKind::ParallelRace, 1)->name(),
      "sequential");
  EXPECT_STREQ(
      makeIiSearchStrategy(IiSearchKind::ParallelRace, 2)->name(),
      "parallel-race");
  EXPECT_STREQ(makeIiSearchStrategy(IiSearchKind::Sequential, 8)->name(),
               "sequential");
}
