//===- tests/ProblemHashTest.cpp - Canonical Problem hashing ---------------===//
//
// Property tests for the content-addressed Problem core (sched/Problem.h)
// and the SolutionCache built on it (ilpsched/SolutionCache.h):
//
//   * Relabeling invariance — rebuilding a random loop under a random
//     node permutation (with shuffled edge/register insertion order) and
//     renaming every machine unit and opclass must not change
//     canonicalHash() or canonicalForm().
//   * Near-miss discrimination — perturbing a single edge latency, a
//     single dependence distance, or a single resource count must
//     change the hash (the perturbed problem is genuinely different).
//   * Cache differential — a schedule served from the cache under a
//     relabeled Problem must be verifier-clean and II/objective-
//     identical to a fresh solve, for every backend.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"
#include "ilpsched/SolutionCache.h"
#include "sched/Problem.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

using namespace modsched;

namespace {

/// Shuffles [0, N) with \p R (Fisher-Yates; deterministic per seed).
std::vector<int> randomPermutation(int N, Rng &R) {
  std::vector<int> Perm(static_cast<size_t>(N));
  std::iota(Perm.begin(), Perm.end(), 0);
  for (int I = N - 1; I > 0; --I)
    std::swap(Perm[size_t(I)], Perm[R.nextBelow(uint64_t(I) + 1)]);
  return Perm;
}

/// Rebuilds \p G with operation \p Op renumbered to Perm[Op], fresh
/// names, and randomly shuffled edge / register insertion order — an
/// isomorphic relabeling exercising every order-sensitivity the
/// canonical form must cancel. Optionally perturbs one sched edge
/// (\p TweakEdge >= 0) by \p DLat / \p DDist to build near-misses.
DependenceGraph relabelGraph(const DependenceGraph &G,
                             const std::vector<int> &Perm, Rng &R,
                             int TweakEdge = -1, int DLat = 0,
                             int DDist = 0) {
  const int N = G.numOperations();
  DependenceGraph Out;
  Out.setName(G.name() + "-relabeled");
  std::vector<int> Inverse(size_t(N), 0);
  for (int Op = 0; Op < N; ++Op)
    Inverse[size_t(Perm[size_t(Op)])] = Op;
  for (int NewId = 0; NewId < N; ++NewId) {
    int Old = Inverse[size_t(NewId)];
    Out.addOperation("n" + std::to_string(NewId),
                     G.operation(Old).OpClass);
  }

  // Flow dependences add a register use AND its matching sched edge, so
  // first match each register use to the sched edge addFlowDependence
  // created for it; the leftovers are pure scheduling edges.
  const std::vector<SchedEdge> &Edges = G.schedEdges();
  std::vector<bool> FromFlow(Edges.size(), false);
  struct Flow {
    int Def, Use, Latency, Distance;
  };
  std::vector<Flow> Flows;
  for (const VirtualRegister &Reg : G.registers())
    for (const RegisterUse &U : Reg.Uses) {
      int Matched = -1;
      for (size_t E = 0; E != Edges.size(); ++E)
        if (!FromFlow[E] && Edges[E].Src == Reg.Def &&
            Edges[E].Dst == U.Consumer && Edges[E].Distance == U.Distance) {
          Matched = int(E);
          break;
        }
      if (Matched < 0) {
        ADD_FAILURE() << "register use without its flow edge";
        continue;
      }
      FromFlow[size_t(Matched)] = true;
      Flows.push_back({Reg.Def, U.Consumer, Edges[size_t(Matched)].Latency,
                       U.Distance});
    }

  std::vector<int> PureEdges;
  for (size_t E = 0; E != Edges.size(); ++E)
    if (!FromFlow[E])
      PureEdges.push_back(int(E));

  // Random insertion order for everything order-insensitive.
  std::vector<int> FlowOrder = randomPermutation(int(Flows.size()), R);
  std::vector<int> PureOrder = randomPermutation(int(PureEdges.size()), R);

  for (int I : FlowOrder) {
    const Flow &F = Flows[size_t(I)];
    Out.addFlowDependence(Perm[size_t(F.Def)], Perm[size_t(F.Use)],
                          F.Latency, F.Distance);
  }
  for (int I : PureOrder) {
    const SchedEdge &E = Edges[size_t(PureEdges[size_t(I)])];
    int Lat = E.Latency, Dist = E.Distance;
    if (PureEdges[size_t(I)] == TweakEdge) {
      Lat += DLat;
      Dist += DDist;
    }
    Out.addSchedEdge(Perm[size_t(E.Src)], Perm[size_t(E.Dst)], Lat, Dist);
  }
  // Def-only registers (defined and stored, never consumed).
  for (const VirtualRegister &Reg : G.registers())
    if (Reg.Uses.empty())
      Out.ensureRegister(Perm[size_t(Reg.Def)]);

  // Edge tweaks that landed on a flow edge are applied afterwards via a
  // second pure edge; keep the helper honest by requiring pure targets.
  if (TweakEdge >= 0) {
    EXPECT_FALSE(FromFlow[size_t(TweakEdge)])
        << "near-miss tweak must target a pure scheduling edge";
  }
  return Out;
}

/// Structurally identical machine with every resource and opclass
/// renamed (same table order: canonical ids are rank-by-first-usage, so
/// renaming — the paper-world case of "same datapath, different unit
/// labels" — must not move the digest).
MachineModel renameMachine(const MachineModel &M) {
  MachineModel Out;
  Out.setName(M.name() + "-renamed");
  for (int R = 0; R < M.numResources(); ++R)
    Out.addResource("unit" + std::to_string(R), M.resource(R).Count);
  for (int C = 0; C < M.numOpClasses(); ++C) {
    const OpClass &Cls = M.opClass(C);
    Out.addOpClass("op" + std::to_string(C), Cls.Latency, Cls.Usages);
  }
  return Out;
}

/// A machine equal to \p M except resource \p Res has \p Delta more
/// instances.
MachineModel bumpResourceCount(const MachineModel &M, int Res, int Delta) {
  MachineModel Out;
  Out.setName(M.name());
  for (int R = 0; R < M.numResources(); ++R)
    Out.addResource(M.resource(R).Name,
                    M.resource(R).Count + (R == Res ? Delta : 0));
  for (int C = 0; C < M.numOpClasses(); ++C) {
    const OpClass &Cls = M.opClass(C);
    Out.addOpClass(Cls.Name, Cls.Latency, Cls.Usages);
  }
  return Out;
}

/// First pure (non-flow) scheduling edge of \p G, or -1.
int firstPureEdge(const DependenceGraph &G) {
  const std::vector<SchedEdge> &Edges = G.schedEdges();
  std::vector<bool> FromFlow(Edges.size(), false);
  for (const VirtualRegister &Reg : G.registers())
    for (const RegisterUse &U : Reg.Uses)
      for (size_t E = 0; E != Edges.size(); ++E)
        if (!FromFlow[E] && Edges[E].Src == Reg.Def &&
            Edges[E].Dst == U.Consumer && Edges[E].Distance == U.Distance) {
          FromFlow[E] = true;
          break;
        }
  for (size_t E = 0; E != Edges.size(); ++E)
    if (!FromFlow[E])
      return int(E);
  return -1;
}

DependenceGraph makeLoop(uint64_t Seed, const MachineModel &M,
                         int MaxOps = 14) {
  Rng R(Seed * 131 + 7);
  SyntheticOptions Opts;
  Opts.MinOps = 4;
  Opts.MaxOps = MaxOps;
  return generateLoop(M, R, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Relabeling invariance
//===----------------------------------------------------------------------===//

class ProblemHashInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProblemHashInvarianceTest, RelabelingPreservesHash) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = makeLoop(GetParam(), M);
  Rng R(GetParam() * 977 + 3);
  std::vector<int> Perm = randomPermutation(G.numOperations(), R);
  DependenceGraph G2 = relabelGraph(G, Perm, R);
  ASSERT_FALSE(G2.validate().has_value()) << *G2.validate();
  MachineModel M2 = renameMachine(M);

  FormulationOptions FOpts;
  FOpts.Obj = Objective::MinReg;
  Problem A(G, M, FOpts);
  Problem B(G2, M2, FOpts);

  ASSERT_TRUE(A.hashExact()) << "canonical labeling budget tripped";
  ASSERT_TRUE(B.hashExact()) << "canonical labeling budget tripped";
  EXPECT_EQ(A.canonicalHash(), B.canonicalHash());
  EXPECT_EQ(A.canonicalForm(), B.canonicalForm());

  // The canonical index really is a permutation mapping both graphs to
  // one canonical order.
  std::vector<int> SeenA(A.canonicalIndex().size(), 0);
  for (int P : A.canonicalIndex())
    ++SeenA[size_t(P)];
  for (int Count : SeenA)
    EXPECT_EQ(Count, 1);
}

TEST_P(ProblemHashInvarianceTest, OptionsChangeHash) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = makeLoop(GetParam(), M);
  FormulationOptions A, B;
  A.Obj = Objective::MinReg;
  B.Obj = Objective::MinBuff;
  Problem PA(G, M, A), PB(G, M, B);
  EXPECT_NE(PA.canonicalHash(), PB.canonicalHash());
  EXPECT_NE(PA.canonicalForm(), PB.canonicalForm());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProblemHashInvarianceTest,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Near-miss discrimination
//===----------------------------------------------------------------------===//

TEST(ProblemHashTest, SingleLatencyPerturbationChangesHash) {
  MachineModel M = MachineModel::cydraLike();
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    DependenceGraph G = makeLoop(Seed, M);
    int Edge = firstPureEdge(G);
    if (Edge < 0)
      continue; // All edges are flow edges in this draw.
    Rng R(Seed);
    std::vector<int> Identity(size_t(G.numOperations()));
    std::iota(Identity.begin(), Identity.end(), 0);
    DependenceGraph G2 = relabelGraph(G, Identity, R, Edge, /*DLat=*/1,
                                      /*DDist=*/0);
    FormulationOptions FOpts;
    Problem A(G, M, FOpts), B(G2, M, FOpts);
    EXPECT_NE(A.canonicalForm(), B.canonicalForm()) << "seed " << Seed;
    EXPECT_NE(A.canonicalHash(), B.canonicalHash()) << "seed " << Seed;
  }
}

TEST(ProblemHashTest, SingleDistancePerturbationChangesHash) {
  MachineModel M = MachineModel::cydraLike();
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    DependenceGraph G = makeLoop(Seed, M);
    int Edge = firstPureEdge(G);
    if (Edge < 0)
      continue;
    Rng R(Seed);
    std::vector<int> Identity(size_t(G.numOperations()));
    std::iota(Identity.begin(), Identity.end(), 0);
    DependenceGraph G2 = relabelGraph(G, Identity, R, Edge, /*DLat=*/0,
                                      /*DDist=*/1);
    FormulationOptions FOpts;
    Problem A(G, M, FOpts), B(G2, M, FOpts);
    EXPECT_NE(A.canonicalForm(), B.canonicalForm()) << "seed " << Seed;
    EXPECT_NE(A.canonicalHash(), B.canonicalHash()) << "seed " << Seed;
  }
}

TEST(ProblemHashTest, SingleResourceCountPerturbationChangesHash) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = makeLoop(5, M);
  MachineModel M2 = bumpResourceCount(M, 0, 1);
  FormulationOptions FOpts;
  Problem A(G, M, FOpts), B(G, M2, FOpts);
  EXPECT_NE(A.canonicalForm(), B.canonicalForm());
  EXPECT_NE(A.canonicalHash(), B.canonicalHash());
}

//===----------------------------------------------------------------------===//
// SolutionCache differential
//===----------------------------------------------------------------------===//

namespace {

/// Fresh-solves \p G, inserts the result into a private cache, then
/// looks it up under a RELABELED problem and checks the replayed
/// schedule is verifier-clean with identical II and objective.
void cacheDifferential(SchedulerBackend Backend, uint64_t Seed) {
  MachineModel M = MachineModel::vliw2();
  // Small loops: MinReg solves must finish well inside the budget on
  // every seed, or the differential never runs.
  DependenceGraph G = makeLoop(Seed, M, /*MaxOps=*/8);

  SchedulerOptions Opts;
  Opts.Backend = Backend;
  Opts.Formulation.Obj = Objective::MinReg;
  Opts.TimeLimitSeconds = 30.0;
  Opts.Cache = false; // Fresh solve; the cache is exercised by hand.
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult Fresh = Sched.schedule(G);
  if (!Fresh.Found || Fresh.TimedOut || Fresh.NodeLimitHit)
    GTEST_SKIP() << "fresh solve censored; nothing to cache";

  Problem Original(G, M, Opts.Formulation);
  const uint64_t Key = SolutionCache::requestKey(Opts);
  SolutionCache Cache(/*MaxEntries=*/8);
  Cache.insert(Original, Key, Fresh);
  ASSERT_EQ(Cache.size(), 1u);

  Rng R(Seed * 31 + 1);
  std::vector<int> Perm = randomPermutation(G.numOperations(), R);
  DependenceGraph G2 = relabelGraph(G, Perm, R);
  MachineModel M2 = renameMachine(M);
  Problem Relabeled(G2, M2, Opts.Formulation);

  std::optional<SolutionCache::Hit> Hit = Cache.lookup(Relabeled, Key);
  ASSERT_TRUE(Hit.has_value()) << "isomorphic problem missed the cache";
  EXPECT_EQ(Hit->II, Fresh.II);
  EXPECT_NEAR(Hit->SecondaryObjective, Fresh.SecondaryObjective, 1e-6);
  // lookup() verifies internally (and would abort); double-check here
  // against the relabeled graph anyway so the test stands alone.
  EXPECT_FALSE(verifySchedule(G2, M2, Hit->Schedule).has_value());

  // Differential: a fresh solve of the relabeled problem agrees with
  // the cache-served verdict.
  OptimalModuloScheduler Sched2(M2, Opts);
  ScheduleResult Fresh2 = Sched2.schedule(G2);
  ASSERT_TRUE(Fresh2.Found);
  EXPECT_EQ(Fresh2.II, Hit->II);
  // Objectives agree up to solver arithmetic noise; verdict equality is
  // what the cache promises, not bit-identical floating point.
  EXPECT_NEAR(Fresh2.SecondaryObjective, Hit->SecondaryObjective, 1e-6);

  // Wrong request key must miss.
  EXPECT_FALSE(Cache.lookup(Relabeled, Key + 1).has_value());
}

} // namespace

TEST(SolutionCacheTest, DifferentialIlp) {
  for (uint64_t Seed : {2u, 3u, 7u})
    cacheDifferential(SchedulerBackend::Ilp, Seed);
}

TEST(SolutionCacheTest, DifferentialPb) {
  for (uint64_t Seed : {2u, 3u, 7u})
    cacheDifferential(SchedulerBackend::Pb, Seed);
}

TEST(SolutionCacheTest, DifferentialPortfolio) {
  for (uint64_t Seed : {2u, 3u, 7u})
    cacheDifferential(SchedulerBackend::Portfolio, Seed);
}

TEST(SolutionCacheTest, EndToEndSecondRunHits) {
  MachineModel M = MachineModel::vliw2();
  DependenceGraph G = makeLoop(11, M);
  SolutionCache::global().clear();

  SchedulerOptions Opts;
  Opts.Formulation.Obj = Objective::MinBuff;
  Opts.Cache = true;
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult First = Sched.schedule(G);
  if (!First.Found || First.TimedOut || First.NodeLimitHit)
    GTEST_SKIP() << "solve censored";
  EXPECT_FALSE(First.CacheHit);

  ScheduleResult Second = Sched.schedule(G);
  ASSERT_TRUE(Second.Found);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.II, First.II);
  EXPECT_EQ(Second.SecondaryObjective, First.SecondaryObjective);
  EXPECT_TRUE(Second.Attempts.empty())
      << "cache hits must not synthesize solver attempts";
  EXPECT_EQ(Second.Nodes, 0);
  EXPECT_FALSE(verifySchedule(G, M, Second.Schedule).has_value());
  SolutionCache::global().clear();
}

TEST(SolutionCacheTest, CensoredResultsAreNotInserted) {
  MachineModel M = MachineModel::vliw2();
  DependenceGraph G = makeLoop(4, M);
  SolutionCache Cache;
  SchedulerOptions Opts;
  Problem P(G, M, Opts.Formulation);
  ScheduleResult R;
  R.Found = true;
  R.TimedOut = true; // Censored: must be refused.
  R.II = 3;
  R.Schedule = ModuloSchedule(3, std::vector<int>(
                                     size_t(G.numOperations()), 0));
  Cache.insert(P, SolutionCache::requestKey(Opts), R);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(SolutionCacheTest, LruEvictsAtCapacity) {
  MachineModel M = MachineModel::vliw2();
  SchedulerOptions Opts;
  SolutionCache Cache(/*MaxEntries=*/2);
  const uint64_t Key = SolutionCache::requestKey(Opts);

  // Three distinct loops through a 2-entry cache: the first inserted
  // must be gone, the last two present.
  std::vector<DependenceGraph> Loops;
  for (uint64_t Seed : {21u, 22u, 23u})
    Loops.push_back(makeLoop(Seed, M));
  OptimalModuloScheduler Sched(M, Opts);
  for (const DependenceGraph &G : Loops) {
    ScheduleResult R = Sched.schedule(G);
    ASSERT_TRUE(R.Found);
    Problem P(G, M, Opts.Formulation);
    Cache.insert(P, Key, R);
  }
  EXPECT_EQ(Cache.size(), 2u);
  Problem P0(Loops[0], M, Opts.Formulation);
  Problem P2(Loops[2], M, Opts.Formulation);
  EXPECT_FALSE(Cache.lookup(P0, Key).has_value());
  EXPECT_TRUE(Cache.lookup(P2, Key).has_value());
}
