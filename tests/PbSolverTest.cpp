//===- tests/PbSolverTest.cpp - CDCL pseudo-Boolean solver tests ----------===//
//
// Part of the modsched project (PLDI'97 optimal modulo scheduling repro).
//
// Unit tests for the conflict-driven pseudo-Boolean engine: propagation
// over clauses / cardinality / general PB rows, conflict analysis on
// pigeonhole and parity instances, UNSAT cores under assumptions,
// incremental solution-improving bounds, budgets, and a brute-force
// differential fuzz on random PB instances.
//
//===----------------------------------------------------------------------===//

#include "pb/PbSolver.h"

#include "support/Cancellation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using namespace modsched;
using namespace modsched::pb;

namespace {

std::vector<Var> makeVars(Solver &S, int N) {
  std::vector<Var> Vs;
  for (int I = 0; I < N; ++I)
    Vs.push_back(S.newVar());
  return Vs;
}

/// sum(Lits) <= Bound, via sum(~Lits) >= n - Bound.
void addAtMost(Solver &S, const std::vector<Lit> &Lits, int64_t Bound) {
  std::vector<Lit> Flipped;
  for (Lit L : Lits)
    Flipped.push_back(~L);
  ASSERT_TRUE(S.addAtLeast(Flipped, int64_t(Lits.size()) - Bound));
}

TEST(PbSolver, EmptyInstanceIsSat) {
  Solver S;
  EXPECT_EQ(S.solve(), SolveStatus::Sat);
}

TEST(PbSolver, UnitPropagationChain) {
  Solver S;
  auto V = makeVars(S, 4);
  // a;  a -> b;  b -> c;  c -> d.
  ASSERT_TRUE(S.addClause({posLit(V[0])}));
  ASSERT_TRUE(S.addClause({negLit(V[0]), posLit(V[1])}));
  ASSERT_TRUE(S.addClause({negLit(V[1]), posLit(V[2])}));
  ASSERT_TRUE(S.addClause({negLit(V[2]), posLit(V[3])}));
  ASSERT_EQ(S.solve(), SolveStatus::Sat);
  for (Var X : V)
    EXPECT_TRUE(S.modelValue(X));
  // The whole chain is root-level propagation: no decisions needed.
  EXPECT_EQ(S.stats().Decisions, 0);
}

TEST(PbSolver, ContradictoryUnitsAreRootUnsat) {
  Solver S;
  Var A = S.newVar();
  ASSERT_TRUE(S.addClause({posLit(A)}));
  EXPECT_FALSE(S.addClause({negLit(A)}));
  EXPECT_FALSE(S.okay());
  EXPECT_EQ(S.solve(), SolveStatus::Unsat);
  EXPECT_TRUE(S.unsatCore().empty());
}

TEST(PbSolver, CardinalityPropagates) {
  Solver S;
  auto V = makeVars(S, 3);
  // At least 2 of {a, b, c}; force ~a: b and c must propagate.
  ASSERT_TRUE(
      S.addAtLeast({posLit(V[0]), posLit(V[1]), posLit(V[2])}, 2));
  ASSERT_TRUE(S.addClause({negLit(V[0])}));
  ASSERT_EQ(S.solve(), SolveStatus::Sat);
  EXPECT_FALSE(S.modelValue(V[0]));
  EXPECT_TRUE(S.modelValue(V[1]));
  EXPECT_TRUE(S.modelValue(V[2]));
  EXPECT_EQ(S.stats().Decisions, 0);
}

TEST(PbSolver, CardinalityDegreeEqualsSizeForcesAll) {
  Solver S;
  auto V = makeVars(S, 3);
  ASSERT_TRUE(
      S.addAtLeast({posLit(V[0]), posLit(V[1]), posLit(V[2])}, 3));
  ASSERT_EQ(S.solve(), SolveStatus::Sat);
  for (Var X : V)
    EXPECT_TRUE(S.modelValue(X));
}

TEST(PbSolver, GeneralPbPropagatesHeavyCoefficient) {
  Solver S;
  auto V = makeVars(S, 3);
  // 3a + 2b + 2c >= 5: slack is 2, so a (coefficient 3) is forced.
  ASSERT_TRUE(S.addLinear(
      {{posLit(V[0]), 3}, {posLit(V[1]), 2}, {posLit(V[2]), 2}}, 5));
  ASSERT_EQ(S.solve(), SolveStatus::Sat);
  EXPECT_TRUE(S.modelValue(V[0])) << "coefficient-3 literal must be forced";
  int64_t Sum = 3 * S.modelValue(V[0]) + 2 * S.modelValue(V[1]) +
                2 * S.modelValue(V[2]);
  EXPECT_GE(Sum, 5);
}

TEST(PbSolver, NegativeCoefficientsNormalize) {
  Solver S;
  auto V = makeVars(S, 2);
  // 2x - 3y >= 0  ==  2x + 3~y >= 3: ~y is forced, x stays free.
  ASSERT_TRUE(S.addLinear({{posLit(V[0]), 2}, {posLit(V[1]), -3}}, 0));
  ASSERT_EQ(S.solve(), SolveStatus::Sat);
  EXPECT_FALSE(S.modelValue(V[1]));
}

TEST(PbSolver, DuplicateAndOppositeLiteralsMerge) {
  Solver S;
  auto V = makeVars(S, 2);
  // x + x + ~x + y >= 2  ==  1 + x + y >= 2  ==  x + y >= 1.
  ASSERT_TRUE(S.addLinear(
      {{posLit(V[0]), 1}, {posLit(V[0]), 1}, {negLit(V[0]), 1},
       {posLit(V[1]), 1}},
      2));
  ASSERT_TRUE(S.addClause({negLit(V[0])}));
  ASSERT_EQ(S.solve(), SolveStatus::Sat);
  EXPECT_TRUE(S.modelValue(V[1]));
}

/// Pigeonhole principle PHP(P, H): P pigeons, H holes, each pigeon in
/// some hole, each hole holds at most one pigeon. UNSAT iff P > H.
void encodePigeonhole(Solver &S, int Pigeons, int Holes,
                      std::vector<std::vector<Var>> &X) {
  X.assign(size_t(Pigeons), {});
  for (int P = 0; P < Pigeons; ++P)
    for (int H = 0; H < Holes; ++H)
      X[size_t(P)].push_back(S.newVar());
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> Row;
    for (int H = 0; H < Holes; ++H)
      Row.push_back(posLit(X[size_t(P)][size_t(H)]));
    ASSERT_TRUE(S.addClause(Row));
  }
  for (int H = 0; H < Holes; ++H) {
    std::vector<Lit> Col;
    for (int P = 0; P < Pigeons; ++P)
      Col.push_back(posLit(X[size_t(P)][size_t(H)]));
    addAtMost(S, Col, 1);
  }
}

TEST(PbSolver, PigeonholeUnsat) {
  Solver S;
  std::vector<std::vector<Var>> X;
  encodePigeonhole(S, 6, 5, X);
  EXPECT_EQ(S.solve(), SolveStatus::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0);
}

TEST(PbSolver, PigeonholeSatWhenHolesSuffice) {
  Solver S;
  std::vector<std::vector<Var>> X;
  encodePigeonhole(S, 5, 5, X);
  ASSERT_EQ(S.solve(), SolveStatus::Sat);
  // The model must be a perfect matching.
  for (size_t H = 0; H < 5; ++H) {
    int Used = 0;
    for (size_t P = 0; P < 5; ++P)
      Used += S.modelValue(X[P][H]);
    EXPECT_LE(Used, 1);
  }
}

/// XOR of \p A, \p B, \p C == \p Odd, as four clauses.
void addXor3(Solver &S, Var A, Var B, Var C, bool Odd) {
  for (int Mask = 0; Mask < 8; ++Mask) {
    int Ones = (Mask & 1) + ((Mask >> 1) & 1) + ((Mask >> 2) & 1);
    if ((Ones % 2 == 1) == Odd)
      continue; // Satisfying assignment, no clause.
    // Forbid this assignment.
    ASSERT_TRUE(S.addClause({Lit(A, (Mask & 1) != 0),
                             Lit(B, (Mask & 2) != 0),
                             Lit(C, (Mask & 4) != 0)}));
  }
}

TEST(PbSolver, ParityChainUnsat) {
  // x0^x1^x2 = 1, x2^x3^x4 = 1, x4^x5^x0 = 1, and all of x1,x3,x5
  // false with x0^x2^x4 forced even: the xor sum is contradictory.
  Solver S;
  auto V = makeVars(S, 6);
  addXor3(S, V[0], V[1], V[2], true);
  addXor3(S, V[2], V[3], V[4], true);
  addXor3(S, V[4], V[5], V[0], true);
  // Sum of the three equations: x1 ^ x3 ^ x5 = 1 is implied.
  ASSERT_TRUE(S.addClause({negLit(V[1])}));
  ASSERT_TRUE(S.addClause({negLit(V[3])}));
  ASSERT_TRUE(S.addClause({negLit(V[5])}));
  EXPECT_EQ(S.solve(), SolveStatus::Unsat);
}

TEST(PbSolver, AssumptionsFlipVerdictIncrementally) {
  Solver S;
  auto V = makeVars(S, 3);
  // a -> b, b -> c, ~c under assumption: a must be false.
  ASSERT_TRUE(S.addClause({negLit(V[0]), posLit(V[1])}));
  ASSERT_TRUE(S.addClause({negLit(V[1]), posLit(V[2])}));
  ASSERT_TRUE(S.addClause({negLit(V[2])}));
  EXPECT_EQ(S.solve({posLit(V[0])}), SolveStatus::Unsat);
  // The core names the failed assumption.
  ASSERT_EQ(S.unsatCore().size(), 1u);
  EXPECT_EQ(S.unsatCore()[0], posLit(V[0]));
  // Same database, opposite assumption: satisfiable.
  EXPECT_EQ(S.solve({negLit(V[0])}), SolveStatus::Sat);
  EXPECT_FALSE(S.modelValue(V[0]));
  // And with no assumptions at all.
  EXPECT_EQ(S.solve(), SolveStatus::Sat);
}

TEST(PbSolver, UnsatCoreIsSubsetOfAssumptions) {
  Solver S;
  auto V = makeVars(S, 5);
  // a and b together are contradictory; c, d, e are free.
  ASSERT_TRUE(S.addClause({negLit(V[0]), negLit(V[1])}));
  std::vector<Lit> Assumps = {posLit(V[2]), posLit(V[0]), posLit(V[3]),
                              posLit(V[1]), posLit(V[4])};
  ASSERT_EQ(S.solve(Assumps), SolveStatus::Unsat);
  const std::vector<Lit> &Core = S.unsatCore();
  EXPECT_FALSE(Core.empty());
  EXPECT_LE(Core.size(), 2u);
  for (Lit L : Core)
    EXPECT_TRUE(L == posLit(V[0]) || L == posLit(V[1]))
        << "core leaked an irrelevant assumption";
}

TEST(PbSolver, SelectorGatedBoundTightening) {
  // Solution-improving descent: minimize sum(x) subject to
  // sum(x over any window of 3) >= 1 on 9 variables, by adding
  // selector-gated upper bounds and assuming the selector off.
  Solver S;
  auto V = makeVars(S, 9);
  for (int I = 0; I + 3 <= 9; I += 3) {
    std::vector<Lit> Window;
    for (int J = I; J < I + 3; ++J)
      Window.push_back(posLit(V[size_t(J)]));
    ASSERT_TRUE(S.addAtLeast(Window, 1));
  }
  std::vector<Lit> Assumps;
  int64_t Best = -1;
  for (;;) {
    if (S.solve(Assumps) != SolveStatus::Sat)
      break;
    int64_t Cost = 0;
    for (Var X : V)
      Cost += S.modelValue(X);
    if (Best >= 0) {
      EXPECT_LT(Cost, Best) << "bound constraint failed to tighten";
    }
    Best = Cost;
    // Gate "sum(x) <= Cost - 1" behind a fresh selector:
    // sum(~x) + n * sel >= n - Cost + 1.
    Var Sel = S.newVar();
    std::vector<std::pair<Lit, int64_t>> Terms;
    for (Var X : V)
      Terms.push_back({negLit(X), 1});
    Terms.push_back({posLit(Sel), 9});
    ASSERT_TRUE(S.addLinear(Terms, 9 - Cost + 1));
    Assumps.push_back(negLit(Sel));
  }
  EXPECT_EQ(Best, 3) << "optimum of the window cover is one per window";
}

TEST(PbSolver, ConflictLimitReportsLimit) {
  Solver S;
  std::vector<std::vector<Var>> X;
  encodePigeonhole(S, 9, 8, X);
  S.ConflictLimit = 3;
  SolveStatus St = S.solve();
  EXPECT_EQ(St, SolveStatus::Limit);
  S.ConflictLimit = -1;
  EXPECT_EQ(S.solve(), SolveStatus::Unsat);
}

TEST(PbSolver, CancellationWins) {
  Solver S;
  std::vector<std::vector<Var>> X;
  encodePigeonhole(S, 9, 8, X);
  CancellationSource Src;
  S.Cancel = Src.token();
  Src.cancel();
  EXPECT_EQ(S.solve(), SolveStatus::Cancelled);
}

TEST(PbSolver, ExpiredDeadlineReportsLimit) {
  Solver S;
  std::vector<std::vector<Var>> X;
  encodePigeonhole(S, 9, 8, X);
  S.DeadlineSeconds = 0.0; // Already expired on the monotonic clock.
  EXPECT_EQ(S.solve(), SolveStatus::Limit);
}

TEST(PbSolver, ExportRowsRecordNormalizedConstraints) {
  Solver S;
  auto V = makeVars(S, 2);
  ASSERT_TRUE(S.addLinear({{posLit(V[0]), -2}, {posLit(V[1]), 3}}, 1));
  ASSERT_EQ(S.exportRows().size(), 1u);
  const ExportRow &R = S.exportRows()[0];
  // -2x + 3y >= 1 normalizes to 2~x + 3y >= 3.
  ASSERT_EQ(R.Terms.size(), 2u);
  EXPECT_EQ(R.Degree, 3);
  for (const auto &T : R.Terms) {
    if (T.first == negLit(V[0])) {
      EXPECT_EQ(T.second, 2);
    } else if (T.first == posLit(V[1])) {
      EXPECT_EQ(T.second, 3);
    } else {
      ADD_FAILURE() << "unexpected literal in export row";
    }
  }
}

//===----------------------------------------------------------------------===//
// Brute-force differential fuzz
//===----------------------------------------------------------------------===//

struct RandomRow {
  std::vector<std::pair<int, int64_t>> Terms; // (var, signed coeff)
  int64_t Degree;
};

/// True when \p Assignment (bit I = var I) satisfies every row.
bool satisfiesAll(const std::vector<RandomRow> &Rows, uint32_t Assignment) {
  for (const RandomRow &R : Rows) {
    int64_t Sum = 0;
    for (const auto &T : R.Terms)
      if ((Assignment >> T.first) & 1)
        Sum += T.second;
    if (Sum < R.Degree)
      return false;
  }
  return true;
}

TEST(PbSolver, RandomInstancesMatchBruteForce) {
  std::mt19937_64 Rng(20260806);
  int SatCount = 0, UnsatCount = 0;
  for (int Round = 0; Round < 300; ++Round) {
    int NumVars = 3 + int(Rng() % 8); // 3..10 variables.
    int NumRows = 2 + int(Rng() % 10);
    std::vector<RandomRow> Rows;
    for (int I = 0; I < NumRows; ++I) {
      RandomRow R;
      int Width = 1 + int(Rng() % 4);
      int64_t MaxPos = 0;
      for (int J = 0; J < Width; ++J) {
        int VarI = int(Rng() % uint64_t(NumVars));
        int64_t C = 1 + int64_t(Rng() % 4);
        if (Rng() % 3 == 0)
          C = -C;
        else
          MaxPos += C;
        R.Terms.push_back({VarI, C});
      }
      // Degrees near the achievable maximum mix SAT and UNSAT.
      R.Degree = int64_t(Rng() % uint64_t(MaxPos + 3)) - 1;
      Rows.push_back(R);
    }

    Solver S;
    std::vector<Var> Vars = makeVars(S, NumVars);
    bool RootOk = true;
    for (const RandomRow &R : Rows) {
      std::vector<std::pair<Lit, int64_t>> Terms;
      for (const auto &T : R.Terms)
        Terms.push_back({posLit(Vars[size_t(T.first)]), T.second});
      if (!S.addLinear(Terms, R.Degree)) {
        RootOk = false;
        break;
      }
    }

    bool BruteSat = false;
    for (uint32_t A = 0; A < (1u << NumVars) && !BruteSat; ++A)
      BruteSat = satisfiesAll(Rows, A);

    if (!RootOk) {
      EXPECT_FALSE(BruteSat) << "root conflict on a satisfiable instance "
                             << "(round " << Round << ")";
      ++UnsatCount;
      continue;
    }
    SolveStatus St = S.solve();
    if (BruteSat) {
      ASSERT_EQ(St, SolveStatus::Sat) << "round " << Round;
      uint32_t A = 0;
      for (int V = 0; V < NumVars; ++V)
        A |= uint32_t(S.modelValue(Vars[size_t(V)])) << V;
      EXPECT_TRUE(satisfiesAll(Rows, A))
          << "model violates a constraint (round " << Round << ")";
      ++SatCount;
    } else {
      ASSERT_EQ(St, SolveStatus::Unsat) << "round " << Round;
      ++UnsatCount;
    }
  }
  // The generator must exercise both verdicts.
  EXPECT_GT(SatCount, 30);
  EXPECT_GT(UnsatCount, 30);
}

TEST(PbSolver, RandomCardinalityInstancesMatchBruteForce) {
  std::mt19937_64 Rng(987654321);
  for (int Round = 0; Round < 200; ++Round) {
    int NumVars = 4 + int(Rng() % 7);
    int NumRows = 3 + int(Rng() % 8);
    std::vector<RandomRow> Rows;
    for (int I = 0; I < NumRows; ++I) {
      RandomRow R;
      int Width = 2 + int(Rng() % 4);
      for (int J = 0; J < Width; ++J) {
        int VarI = int(Rng() % uint64_t(NumVars));
        R.Terms.push_back({VarI, (Rng() % 2) ? int64_t(1) : int64_t(-1)});
      }
      R.Degree = int64_t(Rng() % uint64_t(Width + 1)) - int64_t(Width / 2);
      Rows.push_back(R);
    }

    Solver S;
    std::vector<Var> Vars = makeVars(S, NumVars);
    bool RootOk = true;
    for (const RandomRow &R : Rows) {
      std::vector<std::pair<Lit, int64_t>> Terms;
      for (const auto &T : R.Terms)
        Terms.push_back({posLit(Vars[size_t(T.first)]), T.second});
      if (!S.addLinear(Terms, R.Degree)) {
        RootOk = false;
        break;
      }
    }

    bool BruteSat = false;
    for (uint32_t A = 0; A < (1u << NumVars) && !BruteSat; ++A)
      BruteSat = satisfiesAll(Rows, A);

    if (!RootOk) {
      EXPECT_FALSE(BruteSat) << "round " << Round;
      continue;
    }
    SolveStatus St = S.solve();
    EXPECT_EQ(St, BruteSat ? SolveStatus::Sat : SolveStatus::Unsat)
        << "round " << Round;
  }
}

TEST(PbSolver, StatsAccumulateAcrossSolves) {
  Solver S;
  std::vector<std::vector<Var>> X;
  encodePigeonhole(S, 6, 5, X);
  ASSERT_EQ(S.solve(), SolveStatus::Unsat);
  int64_t C1 = S.stats().Conflicts;
  EXPECT_GT(C1, 0);
  EXPECT_GT(S.stats().Propagations, 0);
  // A second solve on the (now root-unsat) database is free.
  ASSERT_EQ(S.solve(), SolveStatus::Unsat);
  EXPECT_EQ(S.stats().Conflicts, C1);
}

} // namespace
