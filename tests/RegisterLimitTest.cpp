//===- tests/RegisterLimitTest.cpp - register-constrained scheduling -------===//
//
// Tests of FormulationOptions::RegisterLimit: scheduling with a hard
// register-file budget (per-row live count <= K), the dual question to
// the paper's MinReg objective.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"

#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

ScheduleResult scheduleWithLimit(const MachineModel &M,
                                 const DependenceGraph &G, int Limit,
                                 Objective Obj = Objective::None) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Obj;
  Opts.Formulation.RegisterLimit = Limit;
  Opts.TimeLimitSeconds = 30.0;
  Opts.MaxIiIncrease = 16;
  OptimalModuloScheduler Sched(M, Opts);
  return Sched.schedule(G);
}

} // namespace

TEST(RegisterLimit, GenerousLimitKeepsMinimumIi) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ScheduleResult R = scheduleWithLimit(M, G, 7); // Exactly MinReg at II=2.
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.II, 2);
  EXPECT_LE(computeRegisterPressure(G, R.Schedule).MaxLive, 7);
}

TEST(RegisterLimit, TightLimitRaisesIi) {
  // The paper's example needs 7 registers at II=2; with only 6 the II
  // must rise (or the loop becomes unschedulable in the window).
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ScheduleResult R = scheduleWithLimit(M, G, 6);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.II, 2);
  EXPECT_LE(computeRegisterPressure(G, R.Schedule).MaxLive, 6);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(RegisterLimit, MonotoneInBudget) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = livermore1(M);
  int LastII = 0;
  for (int Limit : {12, 9, 7, 5}) {
    ScheduleResult R = scheduleWithLimit(M, G, Limit);
    if (!R.Found)
      break; // Tighter budgets may become unschedulable: fine.
    if (LastII > 0) {
      EXPECT_GE(R.II, LastII) << "limit " << Limit;
    }
    LastII = R.II;
    EXPECT_LE(computeRegisterPressure(G, R.Schedule).MaxLive, Limit);
  }
}

TEST(RegisterLimit, ZeroBudgetUnschedulable) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ScheduleResult R = scheduleWithLimit(M, G, 0);
  EXPECT_FALSE(R.Found); // Any register is live for >= 1 cycle.
}

TEST(RegisterLimit, ComposesWithMinSl) {
  // Minimize schedule length among schedules fitting the budget.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  ScheduleResult R = scheduleWithLimit(M, G, 7, Objective::MinSL);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.II, 2);
  EXPECT_LE(computeRegisterPressure(G, R.Schedule).MaxLive, 7);
  EXPECT_NEAR(R.SecondaryObjective, R.Schedule.scheduleLength(), 1e-6);
}

TEST(RegisterLimit, AgreesWithMinRegOptimum) {
  // Budget == the MinReg optimum keeps the same II; budget one below
  // forces a worse II (or failure).
  MachineModel M = MachineModel::vliw2();
  Rng Rand(777);
  SyntheticOptions Opts;
  Opts.MinOps = 4;
  Opts.MaxOps = 7;
  for (int Trial = 0; Trial < 5; ++Trial) {
    DependenceGraph G = generateLoop(M, Rand, Opts);
    SchedulerOptions MinRegOpts;
    MinRegOpts.Formulation.Obj = Objective::MinReg;
    MinRegOpts.TimeLimitSeconds = 20.0;
    ScheduleResult Best = OptimalModuloScheduler(M, MinRegOpts).schedule(G);
    if (!Best.Found)
      continue;
    int KStar = static_cast<int>(Best.SecondaryObjective + 0.5);

    ScheduleResult AtK = scheduleWithLimit(M, G, KStar);
    ASSERT_TRUE(AtK.Found) << G.toString();
    EXPECT_EQ(AtK.II, Best.II) << G.toString();

    if (KStar > 1) {
      ScheduleResult BelowK = scheduleWithLimit(M, G, KStar - 1);
      if (BelowK.Found) {
        EXPECT_GT(BelowK.II, Best.II) << G.toString();
        EXPECT_LE(computeRegisterPressure(G, BelowK.Schedule).MaxLive,
                  KStar - 1);
      }
    }
  }
}

TEST(RegisterLimit, StructuredModelStaysZeroOne) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  FormulationOptions Opts;
  Opts.RegisterLimit = 7;
  Formulation F(G, M, 2, Opts);
  ASSERT_TRUE(F.valid());
  EXPECT_TRUE(F.model().isZeroOneStructured());
}
