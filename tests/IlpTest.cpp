//===- tests/IlpTest.cpp - branch-and-bound MIP tests ----------------------===//

#include "ilp/BranchAndBound.h"

#include <gtest/gtest.h>

using namespace modsched;
using namespace modsched::ilp;
using namespace modsched::lp;

TEST(Mip, IntegralRootCountsZeroNodes) {
  // LP relaxation is already integral: x in [0,3], min -x -> x=3.
  Model M;
  M.addVariable("x", 0, 3, -1.0, VarKind::Integer);
  MipSolver S;
  MipResult R = S.solve(M);
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_EQ(R.Nodes, 0);
  EXPECT_DOUBLE_EQ(R.Objective, -3.0);
  EXPECT_DOUBLE_EQ(R.Values[0], 3.0);
}

TEST(Mip, SimpleBranching) {
  // maximize x + y st 2x + 3y <= 12, 3x + 2y <= 12, x,y integer.
  // LP optimum (2.4, 2.4); integer optimum value 4 (e.g. (2,2) or (3,1)).
  Model M;
  int X = M.addVariable("x", 0, 10, -1.0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 10, -1.0, VarKind::Integer);
  M.addConstraint({{X, 2.0}, {Y, 3.0}}, ConstraintSense::LE, 12.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 12.0);
  MipSolver S;
  MipResult R = S.solve(M);
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, -4.0, 1e-6);
  EXPECT_GT(R.Nodes, 0);
}

TEST(Mip, Knapsack) {
  // 0/1 knapsack: values {10,13,7,11}, weights {5,7,4,6}, cap 13.
  // Optimum: items 1+3 (13+11=24, weight 13).
  Model M;
  double Values[] = {10, 13, 7, 11};
  double Weights[] = {5, 7, 4, 6};
  std::vector<Term> Cap;
  for (int I = 0; I < 4; ++I) {
    int V = M.addBinaryVariable("item" + std::to_string(I), -Values[I]);
    Cap.push_back({V, Weights[I]});
  }
  M.addConstraint(Cap, ConstraintSense::LE, 13.0);
  MipSolver S;
  MipResult R = S.solve(M);
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, -24.0, 1e-6);
  EXPECT_NEAR(R.Values[1], 1.0, 1e-6);
  EXPECT_NEAR(R.Values[3], 1.0, 1e-6);
}

TEST(Mip, ProvesInfeasibility) {
  // x + y = 1 with x,y even-ish: 2x + 2y = 3 has no integer solution;
  // model: 2x + 2y = 3, x,y integer >= 0.
  Model M;
  int X = M.addVariable("x", 0, 10, 0.0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 10, 0.0, VarKind::Integer);
  M.addConstraint({{X, 2.0}, {Y, 2.0}}, ConstraintSense::EQ, 3.0);
  MipSolver S;
  MipResult R = S.solve(M);
  EXPECT_EQ(R.Status, MipStatus::Infeasible);
  EXPECT_FALSE(R.HasSolution);
}

TEST(Mip, LpInfeasibleRoot) {
  Model M;
  int X = M.addVariable("x", 0, 1, 0.0, VarKind::Integer);
  M.addConstraint({{X, 1.0}}, ConstraintSense::GE, 2.0);
  MipResult R = MipSolver().solve(M);
  EXPECT_EQ(R.Status, MipStatus::Infeasible);
  EXPECT_EQ(R.Nodes, 0);
}

TEST(Mip, MixedIntegerContinuous) {
  // min -x - 10y, x continuous in [0, 2.5], y integer, x + 4y <= 8.
  // Best: y=2 -> x <= 0 -> x=0? x + 8 <= 8 -> x=0, obj -20.
  // y=1 -> x <= 2.5 -> obj -2.5 - 10 = -12.5. So optimum y=2, x=0.
  Model M;
  int X = M.addVariable("x", 0, 2.5, -1.0);
  int Y = M.addVariable("y", 0, 5, -10.0, VarKind::Integer);
  M.addConstraint({{X, 1.0}, {Y, 4.0}}, ConstraintSense::LE, 8.0);
  MipResult R = MipSolver().solve(M);
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_NEAR(R.Objective, -20.0, 1e-6);
  EXPECT_NEAR(R.Values[Y], 2.0, 1e-6);
}

TEST(Mip, StopAtFirstSolution) {
  Model M;
  int X = M.addVariable("x", 0, 10, 0.0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 10, 0.0, VarKind::Integer);
  M.addConstraint({{X, 2.0}, {Y, 3.0}}, ConstraintSense::LE, 12.0);
  MipOptions Opts;
  Opts.StopAtFirstSolution = true;
  MipResult R = MipSolver(Opts).solve(M);
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  EXPECT_TRUE(R.HasSolution);
}

TEST(Mip, NodeLimitReported) {
  // A problem requiring branching, with NodeLimit 0: must stop.
  Model M;
  int X = M.addVariable("x", 0, 10, -1.0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 10, -1.0, VarKind::Integer);
  M.addConstraint({{X, 2.0}, {Y, 3.0}}, ConstraintSense::LE, 11.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 11.0);
  MipOptions Opts;
  Opts.NodeLimit = 0;
  MipResult R = MipSolver(Opts).solve(M);
  EXPECT_EQ(R.Status, MipStatus::Limit);
}

TEST(Mip, BranchRulesAgreeOnOptimum) {
  Model M;
  double Values[] = {6, 5, 4, 3, 7};
  double Weights[] = {4, 3, 2, 2, 5};
  std::vector<Term> Cap;
  for (int I = 0; I < 5; ++I) {
    int V = M.addBinaryVariable("item" + std::to_string(I), -Values[I]);
    Cap.push_back({V, Weights[I]});
  }
  M.addConstraint(Cap, ConstraintSense::LE, 9.0);

  double Reference = 0.0;
  for (BranchRule Rule : {BranchRule::MostFractional,
                          BranchRule::FirstFractional,
                          BranchRule::LastFractional}) {
    MipOptions Opts;
    Opts.Branching = Rule;
    MipResult R = MipSolver(Opts).solve(M);
    ASSERT_EQ(R.Status, MipStatus::Optimal);
    if (Rule == BranchRule::MostFractional)
      Reference = R.Objective;
    else
      EXPECT_NEAR(R.Objective, Reference, 1e-6);
  }
}

TEST(Mip, RoundIntegralValues) {
  std::vector<double> X = {0.9999999, 2.0000001, 0.5, -1.0000001};
  roundIntegralValues(X, 1e-5);
  EXPECT_DOUBLE_EQ(X[0], 1.0);
  EXPECT_DOUBLE_EQ(X[1], 2.0);
  EXPECT_DOUBLE_EQ(X[2], 0.5);
  EXPECT_DOUBLE_EQ(X[3], -1.0);
}

TEST(Mip, AccumulatesSimplexIterations) {
  Model M;
  int X = M.addVariable("x", 0, 10, -1.0, VarKind::Integer);
  int Y = M.addVariable("y", 0, 10, -1.0, VarKind::Integer);
  M.addConstraint({{X, 2.0}, {Y, 3.0}}, ConstraintSense::LE, 12.0);
  M.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LE, 12.0);
  MipResult R = MipSolver().solve(M);
  EXPECT_GT(R.SimplexIterations, 0);
}
