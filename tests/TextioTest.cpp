//===- tests/TextioTest.cpp - .ddg parser/printer tests --------------------===//

#include "textio/DdgFormat.h"
#include "textio/LpWriter.h"

#include "ilpsched/Formulation.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace modsched;

TEST(DdgFormat, ParsesMinimalLoop) {
  MachineModel M = MachineModel::example3();
  std::string Text = R"(# a comment
loop tiny
op ld load
op st store
flow ld st latency=1 omega=0
)";
  std::string Error;
  auto G = parseDdg(Text, M, &Error);
  ASSERT_TRUE(G.has_value()) << Error;
  EXPECT_EQ(G->name(), "tiny");
  EXPECT_EQ(G->numOperations(), 2);
  EXPECT_EQ(G->numSchedEdges(), 1);
  EXPECT_EQ(G->numRegisters(), 1);
}

TEST(DdgFormat, EdgeDoesNotCreateRegister) {
  MachineModel M = MachineModel::example3();
  std::string Text = "op a add\nop b add\nedge a b latency=1 omega=1\n";
  auto G = parseDdg(Text, M);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->numRegisters(), 0);
}

TEST(DdgFormat, ReportsUnknownClass) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(parseDdg("op a warp\n", M, &Error).has_value());
  EXPECT_NE(Error.find("unknown operation class"), std::string::npos);
  EXPECT_NE(Error.find("line 1"), std::string::npos);
}

TEST(DdgFormat, ReportsUnknownOperation) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(
      parseDdg("op a add\nflow a ghost latency=1 omega=0\n", M, &Error)
          .has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos);
}

TEST(DdgFormat, ReportsMalformedNumbers) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(
      parseDdg("op a add\nop b add\nflow a b latency=x omega=0\n", M, &Error)
          .has_value());
  EXPECT_NE(Error.find("malformed"), std::string::npos);
}

TEST(DdgFormat, RejectsNegativeOmega) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(
      parseDdg("op a add\nop b add\nedge a b latency=1 omega=-1\n", M,
               &Error)
          .has_value());
}

TEST(DdgFormat, RejectsDuplicateOpNames) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(parseDdg("op a add\nop a add\n", M, &Error).has_value());
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
}

TEST(DdgFormat, LoadsFromFile) {
  MachineModel M = MachineModel::example3();
  std::string Path = ::testing::TempDir() + "/tiny.ddg";
  {
    std::ofstream Out(Path);
    Out << "loop filetest\nop a add\nop b add\n"
           "flow a b latency=1 omega=0\n";
  }
  std::string Error;
  auto G = loadDdgFile(Path, M, &Error);
  ASSERT_TRUE(G.has_value()) << Error;
  EXPECT_EQ(G->name(), "filetest");
  EXPECT_EQ(G->numOperations(), 2);
}

TEST(DdgFormat, LoadMissingFileReportsError) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(loadDdgFile("/nonexistent/nowhere.ddg", M, &Error)
                   .has_value());
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

TEST(LpWriter, EmitsAllSections) {
  lp::Model M;
  int X = M.addVariable("x", 0, 4, 2.0, lp::VarKind::Integer);
  int Y = M.addVariable("y", -lp::infinity(), lp::infinity(), -1.0);
  M.addConstraint({{X, 1.0}, {Y, -2.0}}, lp::ConstraintSense::LE, 3.0);
  M.addConstraint({{Y, 1.0}}, lp::ConstraintSense::EQ, 1.0);
  std::string Text = writeLpFormat(M);
  EXPECT_NE(Text.find("Minimize"), std::string::npos);
  EXPECT_NE(Text.find("Subject To"), std::string::npos);
  EXPECT_NE(Text.find("Bounds"), std::string::npos);
  EXPECT_NE(Text.find("Generals"), std::string::npos);
  EXPECT_NE(Text.find("End"), std::string::npos);
  EXPECT_NE(Text.find("v0_x"), std::string::npos);
  EXPECT_NE(Text.find("free"), std::string::npos);
  EXPECT_NE(Text.find("<= 3"), std::string::npos);
}

TEST(LpWriter, NoGeneralsWithoutIntegers) {
  lp::Model M;
  M.addVariable("x", 0, 1, 1.0);
  std::string Text = writeLpFormat(M);
  EXPECT_EQ(Text.find("Generals"), std::string::npos);
}

TEST(LpWriter, SanitizesNames) {
  lp::Model M;
  int X = M.addVariable("a r0_weird-name!", 0, 1, 1.0);
  M.addConstraint({{X, 1.0}}, lp::ConstraintSense::GE, 0.0);
  std::string Text = writeLpFormat(M);
  EXPECT_NE(Text.find("v0_a_r0_weird_name_"), std::string::npos);
}

TEST(LpWriter, FormulationExportsCleanly) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  FormulationOptions Opts;
  Opts.Obj = Objective::MinReg;
  Formulation F(G, M, 2, Opts);
  ASSERT_TRUE(F.valid());
  std::string Text = writeLpFormat(F.model());
  // Every constraint appears once.
  size_t Count = 0, Pos = 0;
  while ((Pos = Text.find("\n c", Pos)) != std::string::npos) {
    ++Count;
    ++Pos;
  }
  EXPECT_EQ(Count, static_cast<size_t>(F.model().numConstraints()));
}

TEST(DdgFormat, RoundTripsAllKernels) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G : allKernels(M)) {
    std::string Text = printDdg(G, M);
    std::string Error;
    auto Parsed = parseDdg(Text, M, &Error);
    ASSERT_TRUE(Parsed.has_value()) << G.name() << ": " << Error;
    EXPECT_EQ(Parsed->numOperations(), G.numOperations()) << G.name();
    EXPECT_EQ(Parsed->numSchedEdges(), G.numSchedEdges()) << G.name();
    EXPECT_EQ(Parsed->numRegisters(), G.numRegisters()) << G.name();
    // Second round trip must be a fixpoint.
    EXPECT_EQ(printDdg(*Parsed, M), Text) << G.name();
  }
}
