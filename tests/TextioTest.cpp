//===- tests/TextioTest.cpp - .ddg parser/printer tests --------------------===//

#include "textio/DdgFormat.h"
#include "textio/LpWriter.h"
#include "textio/OpbFormat.h"

#include "ilpsched/Formulation.h"
#include "ilpsched/PbFormulation.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace modsched;

TEST(DdgFormat, ParsesMinimalLoop) {
  MachineModel M = MachineModel::example3();
  std::string Text = R"(# a comment
loop tiny
op ld load
op st store
flow ld st latency=1 omega=0
)";
  std::string Error;
  auto G = parseDdg(Text, M, &Error);
  ASSERT_TRUE(G.has_value()) << Error;
  EXPECT_EQ(G->name(), "tiny");
  EXPECT_EQ(G->numOperations(), 2);
  EXPECT_EQ(G->numSchedEdges(), 1);
  EXPECT_EQ(G->numRegisters(), 1);
}

TEST(DdgFormat, EdgeDoesNotCreateRegister) {
  MachineModel M = MachineModel::example3();
  std::string Text = "op a add\nop b add\nedge a b latency=1 omega=1\n";
  auto G = parseDdg(Text, M);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->numRegisters(), 0);
}

TEST(DdgFormat, ReportsUnknownClass) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(parseDdg("op a warp\n", M, &Error).has_value());
  EXPECT_NE(Error.find("unknown operation class"), std::string::npos);
  EXPECT_NE(Error.find("line 1"), std::string::npos);
}

TEST(DdgFormat, ReportsUnknownOperation) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(
      parseDdg("op a add\nflow a ghost latency=1 omega=0\n", M, &Error)
          .has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos);
}

TEST(DdgFormat, ReportsMalformedNumbers) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(
      parseDdg("op a add\nop b add\nflow a b latency=x omega=0\n", M, &Error)
          .has_value());
  EXPECT_NE(Error.find("malformed"), std::string::npos);
}

TEST(DdgFormat, RejectsNegativeOmega) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(
      parseDdg("op a add\nop b add\nedge a b latency=1 omega=-1\n", M,
               &Error)
          .has_value());
}

TEST(DdgFormat, RejectsDuplicateOpNames) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(parseDdg("op a add\nop a add\n", M, &Error).has_value());
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
}

TEST(DdgFormat, LoadsFromFile) {
  MachineModel M = MachineModel::example3();
  std::string Path = ::testing::TempDir() + "/tiny.ddg";
  {
    std::ofstream Out(Path);
    Out << "loop filetest\nop a add\nop b add\n"
           "flow a b latency=1 omega=0\n";
  }
  std::string Error;
  auto G = loadDdgFile(Path, M, &Error);
  ASSERT_TRUE(G.has_value()) << Error;
  EXPECT_EQ(G->name(), "filetest");
  EXPECT_EQ(G->numOperations(), 2);
}

TEST(DdgFormat, LoadMissingFileReportsError) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(loadDdgFile("/nonexistent/nowhere.ddg", M, &Error)
                   .has_value());
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

TEST(LpWriter, EmitsAllSections) {
  lp::Model M;
  int X = M.addVariable("x", 0, 4, 2.0, lp::VarKind::Integer);
  int Y = M.addVariable("y", -lp::infinity(), lp::infinity(), -1.0);
  M.addConstraint({{X, 1.0}, {Y, -2.0}}, lp::ConstraintSense::LE, 3.0);
  M.addConstraint({{Y, 1.0}}, lp::ConstraintSense::EQ, 1.0);
  std::string Text = writeLpFormat(M);
  EXPECT_NE(Text.find("Minimize"), std::string::npos);
  EXPECT_NE(Text.find("Subject To"), std::string::npos);
  EXPECT_NE(Text.find("Bounds"), std::string::npos);
  EXPECT_NE(Text.find("Generals"), std::string::npos);
  EXPECT_NE(Text.find("End"), std::string::npos);
  EXPECT_NE(Text.find("v0_x"), std::string::npos);
  EXPECT_NE(Text.find("free"), std::string::npos);
  EXPECT_NE(Text.find("<= 3"), std::string::npos);
}

TEST(LpWriter, NoGeneralsWithoutIntegers) {
  lp::Model M;
  M.addVariable("x", 0, 1, 1.0);
  std::string Text = writeLpFormat(M);
  EXPECT_EQ(Text.find("Generals"), std::string::npos);
}

TEST(LpWriter, SanitizesNames) {
  lp::Model M;
  int X = M.addVariable("a r0_weird-name!", 0, 1, 1.0);
  M.addConstraint({{X, 1.0}}, lp::ConstraintSense::GE, 0.0);
  std::string Text = writeLpFormat(M);
  EXPECT_NE(Text.find("v0_a_r0_weird_name_"), std::string::npos);
}

TEST(LpWriter, FormulationExportsCleanly) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  FormulationOptions Opts;
  Opts.Obj = Objective::MinReg;
  Formulation F(G, M, 2, Opts);
  ASSERT_TRUE(F.valid());
  std::string Text = writeLpFormat(F.model());
  // Every constraint appears once.
  size_t Count = 0, Pos = 0;
  while ((Pos = Text.find("\n c", Pos)) != std::string::npos) {
    ++Count;
    ++Pos;
  }
  EXPECT_EQ(Count, static_cast<size_t>(F.model().numConstraints()));
}

TEST(DdgFormat, RoundTripsAllKernels) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G : allKernels(M)) {
    std::string Text = printDdg(G, M);
    std::string Error;
    auto Parsed = parseDdg(Text, M, &Error);
    ASSERT_TRUE(Parsed.has_value()) << G.name() << ": " << Error;
    EXPECT_EQ(Parsed->numOperations(), G.numOperations()) << G.name();
    EXPECT_EQ(Parsed->numSchedEdges(), G.numSchedEdges()) << G.name();
    EXPECT_EQ(Parsed->numRegisters(), G.numRegisters()) << G.name();
    // Second round trip must be a fixpoint.
    EXPECT_EQ(printDdg(*Parsed, M), Text) << G.name();
  }
}

//===----------------------------------------------------------------------===//
// OPB pseudo-Boolean format
//===----------------------------------------------------------------------===//

TEST(OpbFormat, EmitsHeaderObjectiveAndRows) {
  pb::Solver S;
  pb::Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({pb::posLit(A), pb::posLit(B)});
  S.addAtLeast({pb::negLit(A), pb::negLit(B), pb::negLit(C)}, 2);
  S.addLinear({{pb::posLit(A), 3}, {pb::posLit(C), 2}}, 4);
  std::string Text =
      writeOpbFormat(S, {{pb::posLit(C), 1}}, /*ObjectiveConstant=*/5);
  EXPECT_NE(Text.find("* #variable= 3 #constraint= 3"), std::string::npos);
  EXPECT_NE(Text.find("* objective constant 5"), std::string::npos);
  EXPECT_NE(Text.find("min: +1 x3 ;"), std::string::npos);
  EXPECT_NE(Text.find("+1 x1 +1 x2 >= 1 ;"), std::string::npos);
  // Negated literals are folded into variable form: sum ~x >= 2 over
  // three literals becomes -x1 -x2 -x3 >= -1.
  EXPECT_NE(Text.find("-1 x1 -1 x2 -1 x3 >= -1 ;"), std::string::npos);
  EXPECT_NE(Text.find("+3 x1 +2 x3 >= 4 ;"), std::string::npos);
}

TEST(OpbFormat, ParseNormalizesRelationsAndLiterals) {
  std::string Error;
  auto P = parseOpbFormat("* a comment\n"
                          "+2 x1 -3 x2 >= 1 ;\n"
                          "+1 ~x1 +1 x3 >= 1 ;\n"
                          "+1 x1 +1 x2 <= 1 ;\n"
                          "+1 x1 = 1 ;\n",
                          &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  EXPECT_EQ(P->NumVars, 3);
  // ">=" with a negative coefficient: -3 x2 becomes +3 ~x2, degree 4.
  ASSERT_EQ(P->Rows.size(), 5u); // "=" expands to two rows.
  EXPECT_EQ(P->Rows[0].Degree, 4);
  EXPECT_EQ(P->Rows[0].Terms[1].first, pb::negLit(1));
  EXPECT_EQ(P->Rows[0].Terms[1].second, 3);
  // "~x1" parses as a negated literal directly.
  EXPECT_EQ(P->Rows[1].Terms[0].first, pb::negLit(0));
  EXPECT_EQ(P->Rows[1].Degree, 1);
  // "<=" flips into ">=": x1 + x2 <= 1 becomes ~x1 + ~x2 >= 1.
  EXPECT_EQ(P->Rows[2].Degree, 1);
  EXPECT_EQ(P->Rows[2].Terms[0].first, pb::negLit(0));
  EXPECT_EQ(P->Rows[2].Terms[1].first, pb::negLit(1));
}

TEST(OpbFormat, ParseReportsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(parseOpbFormat("+1 y1 >= 1 ;", &Error).has_value());
  EXPECT_NE(Error.find("literal"), std::string::npos);
  EXPECT_FALSE(parseOpbFormat("+1 x1 >= ;", &Error).has_value());
  EXPECT_FALSE(parseOpbFormat("+1 x1 >= 1", &Error).has_value());
  EXPECT_FALSE(parseOpbFormat("bogus x1 >= 1 ;", &Error).has_value());
  EXPECT_FALSE(parseOpbFormat("+1 x1 ;", &Error).has_value());
}

TEST(OpbFormat, SchedulingModelRoundTrips) {
  // write -> parse recovers the PB scheduling model rows exactly as
  // pb::Solver exports them (order, literals, coefficients, degrees) —
  // the same fixpoint contract DdgFormat::RoundTripsAllKernels checks.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  FormulationOptions Opts;
  Opts.Obj = Objective::MinReg;
  PbFormulation F(G, M, 2, Opts);
  ASSERT_TRUE(F.valid());
  std::string Text = writeOpbFormat(F.solver(), F.objectiveTerms(),
                                    F.objectiveConstant());
  std::string Error;
  auto P = parseOpbFormat(Text, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  EXPECT_EQ(P->NumVars, F.solver().numVars());
  EXPECT_TRUE(P->HasObjective);
  EXPECT_EQ(P->ObjectiveConstant, F.objectiveConstant());
  ASSERT_EQ(P->Objective.size(), F.objectiveTerms().size());
  for (size_t I = 0; I < P->Objective.size(); ++I) {
    EXPECT_EQ(P->Objective[I].first, F.objectiveTerms()[I].first);
    EXPECT_EQ(P->Objective[I].second, F.objectiveTerms()[I].second);
  }
  const std::vector<pb::ExportRow> &Rows = F.solver().exportRows();
  ASSERT_EQ(P->Rows.size(), Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I) {
    EXPECT_EQ(P->Rows[I].Degree, Rows[I].Degree) << "row " << I;
    ASSERT_EQ(P->Rows[I].Terms.size(), Rows[I].Terms.size()) << "row " << I;
    for (size_t J = 0; J < Rows[I].Terms.size(); ++J) {
      EXPECT_EQ(P->Rows[I].Terms[J].first, Rows[I].Terms[J].first)
          << "row " << I << " term " << J;
      EXPECT_EQ(P->Rows[I].Terms[J].second, Rows[I].Terms[J].second)
          << "row " << I << " term " << J;
    }
  }
  // Writing the parsed problem again is a fixpoint.
  OpbProblem Again = *P;
  EXPECT_EQ(writeOpbFormat(Again), Text);
}
