//===- tests/ExplainTest.cpp - solve forensics tests ----------------------===//
//
// Constraint provenance, Farkas/unsat-core extraction, and graph-level
// infeasibility witnesses. The contract under test: every infeasible II
// attempt below the achieved II carries an Explanation that an
// independent arithmetic checker (sched/Explain.h checkExplanation)
// confirms against the dependence graph and machine model alone — the
// solver's evidence is never trusted as produced.
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"

#include "ilpsched/PbFormulation.h"
#include "lp/Simplex.h"
#include "sched/Explain.h"
#include "sched/Mii.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

SchedulerOptions makeExplainOpts(SchedulerBackend Backend) {
  SchedulerOptions Opts;
  Opts.Formulation.Obj = Objective::None;
  Opts.Formulation.DepStyle = DependenceStyle::Structured;
  Opts.Backend = Backend;
  Opts.TimeLimitSeconds = 10.0;
  Opts.Explain = true;
  return Opts;
}

/// Runs one attempt at \p II and returns its record (the attempt vector
/// holds exactly the one attempt scheduleAtIi published).
IiAttempt attemptAt(const MachineModel &M, const DependenceGraph &G, int II,
                    SchedulerBackend Backend) {
  OptimalModuloScheduler Sched(M, makeExplainOpts(Backend));
  ScheduleResult Stats;
  Sched.scheduleAtIi(G, II, Stats, /*TimeBudget=*/10.0);
  EXPECT_EQ(Stats.Attempts.size(), 1u);
  return Stats.Attempts.empty() ? IiAttempt() : Stats.Attempts.back();
}

} // namespace

//===----------------------------------------------------------------------===//
// Constraint provenance
//===----------------------------------------------------------------------===//

TEST(Provenance, IlpSideTableCoversEveryRow) {
  MachineModel M = MachineModel::cydraLike();
  for (Objective Obj :
       {Objective::None, Objective::MinReg, Objective::MinBuff}) {
    for (const DependenceGraph &G : allKernels(M)) {
      FormulationOptions FOpts;
      FOpts.Obj = Obj;
      Formulation F(G, M, mii(G, M), FOpts);
      if (!F.valid())
        continue;
      const std::vector<RowOrigin> &Origins = F.rowOrigins();
      ASSERT_EQ(Origins.size(), size_t(F.model().numConstraints())) << G.name();
      for (const RowOrigin &O : Origins)
        EXPECT_NE(O.Kind, RowOriginKind::Unknown) << G.name();
    }
  }
}

TEST(Provenance, PbSideTableCoversEveryRow) {
  MachineModel M = MachineModel::cydraLike();
  for (Objective Obj : {Objective::None, Objective::MinReg}) {
    for (const DependenceGraph &G : allKernels(M)) {
      FormulationOptions FOpts;
      FOpts.Obj = Obj;
      if (!PbFormulation::supports(FOpts))
        continue;
      PbFormulation F(G, M, mii(G, M), FOpts);
      if (!F.valid())
        continue;
      ASSERT_EQ(F.rowOrigins().size(), size_t(F.numConstraints()))
          << G.name();
      for (const RowOrigin &O : F.rowOrigins())
        EXPECT_NE(O.Kind, RowOriginKind::Unknown) << G.name();
    }
  }
}

TEST(Provenance, DepEdgeOriginsPointAtRealEdges) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = allKernels(M).front();
  Formulation F(G, M, mii(G, M), FormulationOptions());
  ASSERT_TRUE(F.valid());
  int DepRows = 0;
  for (const RowOrigin &O : F.rowOrigins()) {
    if (O.Kind != RowOriginKind::DepEdge || O.EdgeIndex < 0)
      continue;
    ++DepRows;
    ASSERT_LT(O.EdgeIndex, G.numSchedEdges());
    const SchedEdge &E = G.schedEdges()[size_t(O.EdgeIndex)];
    EXPECT_EQ(O.Src, E.Src);
    EXPECT_EQ(O.Dst, E.Dst);
    EXPECT_EQ(O.Latency, E.Latency);
    EXPECT_EQ(O.Distance, E.Distance);
  }
  EXPECT_GT(DepRows, 0);
}

//===----------------------------------------------------------------------===//
// LP-engine Farkas extraction
//===----------------------------------------------------------------------===//

TEST(Farkas, BothEnginesReportSupportRows) {
  // x + y >= 4 conflicts with x <= 1, y <= 1 (rows 1 and 2): the
  // certificate must implicate row 0 and at least one of the bounds'
  // rows, under both LP engines.
  for (lp::SimplexEngine Engine :
       {lp::SimplexEngine::Dense, lp::SimplexEngine::SparseRevised}) {
    lp::Model M;
    int X = M.addVariable("x", 0, 10);
    int Y = M.addVariable("y", 0, 10);
    M.addConstraint({{X, 1.0}, {Y, 1.0}}, lp::ConstraintSense::GE, 4.0);
    M.addConstraint({{X, 1.0}}, lp::ConstraintSense::LE, 1.0);
    M.addConstraint({{Y, 1.0}}, lp::ConstraintSense::LE, 1.0);
    lp::SimplexOptions Opts;
    Opts.Engine = Engine;
    Opts.CollectFarkas = true;
    lp::SimplexSolver S(Opts);
    lp::LpResult R = S.solve(M);
    ASSERT_EQ(R.Status, lp::LpStatus::Infeasible)
        << lp::toString(Engine);
    EXPECT_FALSE(R.FarkasRows.empty()) << lp::toString(Engine);
    for (int Row : R.FarkasRows) {
      EXPECT_GE(Row, 0);
      EXPECT_LT(Row, M.numConstraints());
    }
  }
}

TEST(Farkas, OffByDefaultCostsNothing) {
  lp::Model M;
  int X = M.addVariable("x", 0, 10);
  M.addConstraint({{X, 1.0}}, lp::ConstraintSense::GE, 20.0);
  lp::SimplexSolver S;
  lp::LpResult R = S.solve(M);
  ASSERT_EQ(R.Status, lp::LpStatus::Infeasible);
  EXPECT_TRUE(R.FarkasRows.empty());
}

//===----------------------------------------------------------------------===//
// Witnesses at II = MII - 1: every kernel, both backends
//===----------------------------------------------------------------------===//

namespace {

void checkKernelsBelowMii(SchedulerBackend Backend) {
  MachineModel M = MachineModel::cydraLike();
  int Checked = 0;
  for (const DependenceGraph &G : allKernels(M)) {
    int Mii_ = mii(G, M);
    if (Mii_ < 2)
      continue; // II=0 is not a schedulable request.
    IiAttempt A = attemptAt(M, G, Mii_ - 1, Backend);
    if (A.Status == ilp::MipStatus::Limit ||
        A.Status == ilp::MipStatus::Cancelled)
      continue; // Censored: no verdict, no witness owed.
    ASSERT_EQ(A.Status, ilp::MipStatus::Infeasible)
        << G.name() << ": II below MII cannot be feasible";
    ASSERT_TRUE(A.Explain.has_value())
        << G.name() << ": infeasible attempt below MII must be explained";
    EXPECT_NE(A.Explain->Kind, WitnessKind::None) << G.name();
    EXPECT_TRUE(A.Explain->Verified)
        << G.name() << ": witness failed the independent checker";
    // Re-run the independent checker ourselves — Verified must not be a
    // cached lie.
    EXPECT_TRUE(checkExplanation(G, M, Mii_ - 1, 20, *A.Explain))
        << G.name();
    ++Checked;
  }
  EXPECT_GT(Checked, 0) << "suite produced no checkable attempts";
}

} // namespace

TEST(Explain, EveryKernelBelowMiiIlp) {
  checkKernelsBelowMii(SchedulerBackend::Ilp);
}

TEST(Explain, EveryKernelBelowMiiPb) {
  checkKernelsBelowMii(SchedulerBackend::Pb);
}

TEST(Explain, DifferentialBackendsAgreeBelowMii) {
  // Differential smoke: at II = MII - 1 both engines must reach the same
  // verdict and both witnesses must check out against the same graph.
  MachineModel M = MachineModel::cydraLike();
  int Compared = 0;
  for (const DependenceGraph &G : allKernels(M)) {
    int Mii_ = mii(G, M);
    if (Mii_ < 2 || Compared >= 6)
      continue;
    IiAttempt Ilp = attemptAt(M, G, Mii_ - 1, SchedulerBackend::Ilp);
    IiAttempt Pb = attemptAt(M, G, Mii_ - 1, SchedulerBackend::Pb);
    if (Ilp.Status != ilp::MipStatus::Infeasible ||
        Pb.Status != ilp::MipStatus::Infeasible)
      continue; // One side censored; nothing to compare.
    ASSERT_TRUE(Ilp.Explain.has_value()) << G.name();
    ASSERT_TRUE(Pb.Explain.has_value()) << G.name();
    EXPECT_TRUE(Ilp.Explain->Verified) << G.name();
    EXPECT_TRUE(Pb.Explain->Verified) << G.name();
    ++Compared;
  }
  EXPECT_GT(Compared, 0);
}

//===----------------------------------------------------------------------===//
// The checker is genuinely independent
//===----------------------------------------------------------------------===//

TEST(Explain, CheckerRejectsTamperedWitnesses) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G : allKernels(M)) {
    int Mii_ = mii(G, M);
    if (Mii_ < 2)
      continue;
    std::optional<Explanation> E = explainInfeasibleIi(G, M, Mii_ - 1, 20);
    ASSERT_TRUE(E.has_value()) << G.name();
    ASSERT_TRUE(checkExplanation(G, M, Mii_ - 1, 20, *E)) << G.name();
    // A witness of II infeasibility is not one for the achievable II:
    // the arithmetic re-check must fail once II is raised past the
    // bound the witness implies.
    if (E->Kind == WitnessKind::RecurrenceCycle) {
      EXPECT_FALSE(checkExplanation(G, M, E->Cycle.iiBound(), 20, *E))
          << G.name();
      // Corrupting the recorded totals must also be caught.
      Explanation Tampered = *E;
      Tampered.Cycle.TotalLatency += 1;
      EXPECT_FALSE(checkExplanation(G, M, Mii_ - 1, 20, Tampered))
          << G.name();
    } else if (E->Kind == WitnessKind::ResourceSaturation) {
      Explanation Tampered = *E;
      Tampered.ResourceUses += 1; // No longer matches the recount.
      EXPECT_FALSE(checkExplanation(G, M, Mii_ - 1, 20, Tampered))
          << G.name();
    }
    Explanation None;
    EXPECT_FALSE(checkExplanation(G, M, Mii_ - 1, 20, None));
  }
}

TEST(Explain, DescribeRendersEveryWitnessKind) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G : allKernels(M)) {
    int Mii_ = mii(G, M);
    if (Mii_ < 2)
      continue;
    std::optional<Explanation> E = explainInfeasibleIi(G, M, Mii_ - 1, 20);
    ASSERT_TRUE(E.has_value()) << G.name();
    std::string Text = describeExplanation(G, M, Mii_ - 1, *E);
    EXPECT_FALSE(Text.empty()) << G.name();
  }
}

//===----------------------------------------------------------------------===//
// Zero cost when off; audits when on
//===----------------------------------------------------------------------===//

TEST(Explain, OffMeansNoRecords) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = allKernels(M).front();
  SchedulerOptions Opts = makeExplainOpts(SchedulerBackend::Ilp);
  Opts.Explain = false;
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  for (const IiAttempt &A : R.Attempts) {
    EXPECT_FALSE(A.Explain.has_value());
    EXPECT_FALSE(A.Audit.has_value());
  }
}

TEST(Explain, SolvedAttemptsCarryAudits) {
  MachineModel M = MachineModel::cydraLike();
  for (SchedulerBackend Backend :
       {SchedulerBackend::Ilp, SchedulerBackend::Pb}) {
    DependenceGraph G = allKernels(M).front();
    SchedulerOptions Opts = makeExplainOpts(Backend);
    Opts.Formulation.Obj = Objective::MinReg;
    OptimalModuloScheduler Sched(M, Opts);
    ScheduleResult R = Sched.schedule(G);
    ASSERT_TRUE(R.Found);
    ASSERT_FALSE(R.Attempts.empty());
    const IiAttempt &Last = R.Attempts.back();
    ASSERT_TRUE(Last.Scheduled);
    ASSERT_TRUE(Last.Audit.has_value()) << toString(Backend);
    EXPECT_EQ(Last.Audit->Proof, "optimal");
    EXPECT_NEAR(Last.Audit->FinalObjective, R.SecondaryObjective, 1e-9);
    if (Backend == SchedulerBackend::Ilp && Last.Audit->HasRootBound) {
      EXPECT_LE(Last.Audit->RootBound,
                Last.Audit->FinalObjective + 1e-9);
      EXPECT_GE(Last.Audit->Gap, 0.0);
      EXPECT_FALSE(Last.Audit->Trajectory.empty());
    }
  }
}

TEST(Explain, NoObjAuditsSayFirstSolution) {
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = allKernels(M).front();
  OptimalModuloScheduler Sched(M, makeExplainOpts(SchedulerBackend::Ilp));
  ScheduleResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  ASSERT_TRUE(R.Attempts.back().Audit.has_value());
  EXPECT_EQ(R.Attempts.back().Audit->Proof, "first_solution");
}
