//===- tests/UnrollTest.cpp - loop unrolling tests -------------------------===//

#include "graph/Unroll.h"

#include "graph/GraphAlgorithms.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/Mii.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

TEST(Unroll, FactorOneIsStructuralCopy) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  DependenceGraph U = unrollLoop(G, 1);
  EXPECT_EQ(U.numOperations(), G.numOperations());
  EXPECT_EQ(U.numSchedEdges(), G.numSchedEdges());
  EXPECT_EQ(U.numRegisters(), G.numRegisters());
  for (const SchedEdge &E : U.schedEdges()) {
    bool Matched = false;
    for (const SchedEdge &O : G.schedEdges())
      Matched |= O.Latency == E.Latency && O.Distance == E.Distance;
    EXPECT_TRUE(Matched);
  }
}

TEST(Unroll, CountsScaleWithFactor) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = livermore5(M);
  for (int Factor : {2, 3, 4}) {
    DependenceGraph U = unrollLoop(G, Factor);
    EXPECT_EQ(U.numOperations(), G.numOperations() * Factor);
    EXPECT_EQ(U.numSchedEdges(), G.numSchedEdges() * Factor);
    EXPECT_EQ(U.numRegisters(), G.numRegisters() * Factor);
    EXPECT_FALSE(U.validate().has_value());
    EXPECT_FALSE(hasZeroDistanceCycle(U));
  }
}

TEST(Unroll, IntraIterationEdgesStayIntra) {
  // Distance-0 edges must connect ops of the same copy.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  DependenceGraph U = unrollLoop(G, 3);
  int N = G.numOperations();
  for (const SchedEdge &E : U.schedEdges()) {
    if (E.Distance != 0)
      continue;
    EXPECT_EQ(E.Src / N, E.Dst / N); // Same copy block.
  }
}

TEST(Unroll, RecurrenceDistanceFolds) {
  // Self-recurrence with distance 1 unrolled by 3: copy0 -> copy1 and
  // copy1 -> copy2 at distance 0, copy2 -> copy0 at distance 1.
  DependenceGraph G;
  int A = G.addOperation("acc", 0);
  G.addFlowDependence(A, A, 1, 1);
  DependenceGraph U = unrollLoop(G, 3);
  int Dist0 = 0, Dist1 = 0;
  for (const SchedEdge &E : U.schedEdges()) {
    if (E.Distance == 0)
      ++Dist0;
    else if (E.Distance == 1)
      ++Dist1;
  }
  EXPECT_EQ(Dist0, 2);
  EXPECT_EQ(Dist1, 1);
}

TEST(Unroll, FractionalIiRecovered) {
  // Recurrence latency 3 over distance 2: true rate 1.5 cycles/iter.
  // Integer modulo scheduling is stuck at II=2; unrolled by 2 the loop
  // schedules at II=3, i.e. 1.5 cycles per original iteration.
  MachineModel M = MachineModel::example3();
  DependenceGraph G;
  int Add1 = G.addOperation("a1", *M.findOpClass(opclasses::Add));
  int Add2 = G.addOperation("a2", *M.findOpClass(opclasses::Add));
  int Add3 = G.addOperation("a3", *M.findOpClass(opclasses::Add));
  G.addFlowDependence(Add1, Add2, 1, 0);
  G.addFlowDependence(Add2, Add3, 1, 0);
  G.addFlowDependence(Add3, Add1, 1, 2);
  EXPECT_EQ(recMii(G), 2); // ceil(3/2).

  DependenceGraph U = unrollLoop(G, 2);
  EXPECT_EQ(recMii(U), 3); // Cycle latency 6 over distance 2.

  SchedulerOptions Opts;
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult RG = Sched.schedule(G);
  ScheduleResult RU = Sched.schedule(U);
  ASSERT_TRUE(RG.Found && RU.Found);
  EXPECT_EQ(RG.II, 2);
  EXPECT_EQ(RU.II, 3);
  // Cycles per ORIGINAL iteration: 2.0 vs 1.5.
  EXPECT_LT(RU.II / 2.0, double(RG.II));
}

class UnrollPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnrollPropertyTest, UnrolledIiNeverWorsePerIteration) {
  // Scheduling the U-times unrolled loop at U * II(original) is always
  // possible, so optimal II(unrolled) <= U * II(original).
  MachineModel M = MachineModel::vliw2();
  Rng R(GetParam() * 17 + 7);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 6;
  DependenceGraph G = generateLoop(M, R, Opts);
  DependenceGraph U2 = unrollLoop(G, 2);

  SchedulerOptions SOpts;
  SOpts.TimeLimitSeconds = 20.0;
  OptimalModuloScheduler Sched(M, SOpts);
  ScheduleResult RG = Sched.schedule(G);
  ScheduleResult RU = Sched.schedule(U2);
  if (!RG.Found || !RU.Found)
    GTEST_SKIP() << "budget exhausted";
  EXPECT_LE(RU.II, 2 * RG.II) << G.toString();
  EXPECT_FALSE(verifySchedule(U2, M, RU.Schedule).has_value());
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, UnrollPropertyTest,
                         ::testing::Range<uint64_t>(0, 15));
