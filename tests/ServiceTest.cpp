//===- tests/ServiceTest.cpp - Scheduling service protocol/server ---------===//
//
// Coverage for the scheduling-as-a-service layer (src/service):
//
//   * Frame parsing round-trip: a well-formed SCHED frame yields the
//     header knobs and payload text it was built from.
//   * Negative / fuzz corpus: truncated frames, oversized lines and
//     payloads, bad counts, unknown verbs/keys/enum tokens, duplicate
//     and conflicting sections — every one must come back as a
//     structured Error frame with the intended fatality, and a
//     non-fatal error must leave the stream aligned for the next frame
//     (assertions are ON in every build: surviving this corpus IS the
//     hardening test).
//   * End-to-end serveStream: solves over stdin/stdout-style streams,
//     cache-served replay on resubmission, admission shedding when
//     stopping, graceful drain on QUIT, and a daemon that keeps
//     serving after a mid-request disconnect.
//   * Unix-domain socket smoke: listen, accept, PING, shut down.
//
//===----------------------------------------------------------------------===//

#include "graph/DependenceGraph.h"
#include "machine/MachineModel.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "textio/DdgFormat.h"
#include "textio/MachineFormat.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace modsched;
using namespace modsched::service;

namespace {

/// Extracts "key":<value> from a one-line JSON response (machine-
/// written: no spaces, keys unique at top level for those used here).
std::string field(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":";
  std::size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  At += Needle.size();
  std::size_t End = At;
  if (End < Line.size() && Line[End] == '"') {
    ++End;
    while (End < Line.size() && Line[End] != '"')
      ++End;
    return Line.substr(At + 1, End - At - 1);
  }
  while (End < Line.size() && Line[End] != ',' && Line[End] != '}')
    ++End;
  return Line.substr(At, End - At);
}

/// A small solvable loop on example3 (flow chain plus one recurrence),
/// rendered through textio so frames exercise the real payload path.
std::string exampleDdg() {
  MachineModel M = MachineModel::example3();
  DependenceGraph G;
  G.setName("svc");
  int Load = G.addOperation("ld", *M.findOpClass(opclasses::Load));
  int Mul = G.addOperation("mu", *M.findOpClass(opclasses::Mul));
  int Add = G.addOperation("ad", *M.findOpClass(opclasses::Add));
  int St = G.addOperation("st", *M.findOpClass(opclasses::Store));
  G.addFlowDependence(Load, Mul, 1, 0);
  G.addFlowDependence(Mul, Add, 4, 0);
  G.addFlowDependence(Add, St, 1, 0);
  G.addFlowDependence(Add, Mul, 1, 1);
  return printDdg(G, M);
}

int countLines(const std::string &Text) {
  int N = 0;
  for (char C : Text)
    if (C == '\n')
      ++N;
  return N;
}

std::string schedFrame(const std::string &Id, const std::string &Extra = "") {
  std::string Ddg = exampleDdg();
  std::string F = "SCHED id=" + Id + " machine=example3" +
                  (Extra.empty() ? "" : " " + Extra) + "\n";
  F += "DDG " + std::to_string(countLines(Ddg)) + "\n" + Ddg;
  F += "END\n";
  return F;
}

Frame parseOne(const std::string &Text,
               const ProtocolLimits &Limits = ProtocolLimits()) {
  std::istringstream In(Text);
  return readFrame(In, Limits);
}

std::vector<std::string> serve(Server &S, const std::string &Input,
                               const std::string &Client = "test") {
  std::istringstream In(Input);
  std::ostringstream Out;
  S.serveStream(In, Out, Client);
  std::vector<std::string> Lines;
  std::istringstream Split(Out.str());
  std::string Line;
  while (std::getline(Split, Line))
    if (!Line.empty())
      Lines.push_back(Line);
  return Lines;
}

ServerOptions quickOptions() {
  ServerOptions O;
  O.Workers = 1; // Deterministic completion order for the tests.
  O.DefaultTimeLimitSeconds = 20.0;
  O.MaxTimeLimitSeconds = 30.0;
  O.Cache = true;
  return O;
}

TEST(ServiceProtocol, RoundTripParsesHeaderAndPayload) {
  std::string Ddg = exampleDdg();
  Frame F = parseOne(schedFrame("req-1", "objective=minbuff dep=traditional "
                                         "time=2.5 nodes=1000 maxii=7"));
  ASSERT_EQ(F.Kind, FrameKind::Sched);
  EXPECT_EQ(F.Req.Id, "req-1");
  EXPECT_EQ(F.Req.Obj, Objective::MinBuff);
  EXPECT_EQ(F.Req.DepStyle, DependenceStyle::Traditional);
  EXPECT_DOUBLE_EQ(F.Req.TimeLimitSeconds, 2.5);
  EXPECT_EQ(F.Req.NodeLimit, 1000);
  EXPECT_EQ(F.Req.MaxIiIncrease, 7);
  EXPECT_EQ(F.Req.BuiltinMachine, "example3");
  EXPECT_EQ(F.Req.DdgText, Ddg);

  // Inline MACHINE section instead of a builtin.
  MachineModel M = MachineModel::example3();
  std::string MText = printMachine(M);
  std::string WithMachine = "SCHED id=m1\n";
  WithMachine += "MACHINE " + std::to_string(countLines(MText)) + "\n" + MText;
  WithMachine += "DDG " + std::to_string(countLines(Ddg)) + "\n" + Ddg;
  WithMachine += "END\n";
  Frame F2 = parseOne(WithMachine);
  ASSERT_EQ(F2.Kind, FrameKind::Sched);
  EXPECT_EQ(F2.Req.MachineText, MText);
}

TEST(ServiceProtocol, SingleLineVerbs) {
  EXPECT_EQ(parseOne("PING\n").Kind, FrameKind::Ping);
  EXPECT_EQ(parseOne("STATS\n").Kind, FrameKind::Stats);
  EXPECT_EQ(parseOne("QUIT\n").Kind, FrameKind::Quit);
  EXPECT_EQ(parseOne("").Kind, FrameKind::Eof);
  EXPECT_EQ(parseOne("\n\n\nPING\n").Kind, FrameKind::Ping);
}

TEST(ServiceProtocol, NegativeCorpusNeverAborts) {
  struct Case {
    const char *Name;
    std::string Text;
    bool Fatal;
  };
  const Case Corpus[] = {
      {"unknown verb", "FROB x\n", false},
      {"missing id", "SCHED machine=example3\nEND\n", false},
      {"bad id token", "SCHED id=bad!chars\nEND\n", false},
      {"unknown key", "SCHED id=a wat=1\nEND\n", false},
      {"bad objective", "SCHED id=a objective=fastest\nEND\n", false},
      {"bad dep style", "SCHED id=a dep=quantum\nEND\n", false},
      {"bad time", "SCHED id=a time=-5\nEND\n", false},
      {"bad nodes", "SCHED id=a nodes=zero\nEND\n", false},
      {"bad maxii", "SCHED id=a maxii=99999\nEND\n", false},
      {"bad builtin", "SCHED id=a machine=pdp11\nEND\n", false},
      {"bad section", "SCHED id=a machine=example3\nBOGUS 3\nEND\n", false},
      {"bad count", "SCHED id=a machine=example3\nDDG nope\nEND\n", false},
      {"count too large",
       "SCHED id=a machine=example3\nDDG 999999999\nEND\n", false},
      {"duplicate ddg",
       "SCHED id=a machine=example3\nDDG 1\nx\nDDG 1\ny\nEND\n", false},
      {"machine conflict",
       "SCHED id=a machine=example3\nMACHINE 1\nm\nDDG 1\nx\nEND\n", false},
      {"missing ddg", "SCHED id=a machine=example3\nEND\n", false},
      {"missing machine", "SCHED id=a\nDDG 1\nx\nEND\n", false},
      {"truncated payload",
       "SCHED id=a machine=example3\nDDG 5\nonly one line\n", true},
      {"truncated frame", "SCHED id=a machine=example3\nDDG 1\nx\n", true},
      {"eof mid header payload", "SCHED id=a machine=example3\nDDG 2\nx", true},
  };
  for (const Case &C : Corpus) {
    Frame F = parseOne(C.Text);
    EXPECT_EQ(F.Kind, FrameKind::Error) << C.Name;
    EXPECT_FALSE(F.Error.empty()) << C.Name;
    EXPECT_EQ(F.Fatal, C.Fatal) << C.Name << ": " << F.Error;
  }
}

TEST(ServiceProtocol, LimitsAreFatal) {
  ProtocolLimits Tight;
  Tight.MaxLineBytes = 32;
  Tight.MaxPayloadLines = 4;
  Tight.MaxPayloadBytes = 64;

  Frame Long = parseOne("SCHED id=" + std::string(100, 'a') + "\n", Tight);
  EXPECT_EQ(Long.Kind, FrameKind::Error);
  EXPECT_TRUE(Long.Fatal);

  Frame TooMany =
      parseOne("SCHED id=a machine=example3\nDDG 9\nx\nEND\n", Tight);
  EXPECT_EQ(TooMany.Kind, FrameKind::Error);
  EXPECT_FALSE(TooMany.Fatal) << "bad count resyncs via END";

  std::string Fat = "SCHED id=a machine=example3\nDDG 4\n";
  Fat += std::string(30, 'x') + "\n" + std::string(30, 'y') + "\n" +
         std::string(30, 'z') + "\n" + std::string(30, 'w') + "\nEND\n";
  Frame Oversize = parseOne(Fat, Tight);
  EXPECT_EQ(Oversize.Kind, FrameKind::Error);
  EXPECT_TRUE(Oversize.Fatal) << Oversize.Error;
}

TEST(ServiceProtocol, NonFatalErrorLeavesStreamAligned) {
  std::istringstream In("SCHED id=a objective=fastest machine=example3\n"
                        "DDG 1\njunk\nEND\n" +
                        schedFrame("good"));
  ProtocolLimits Limits;
  Frame Bad = readFrame(In, Limits);
  EXPECT_EQ(Bad.Kind, FrameKind::Error);
  EXPECT_FALSE(Bad.Fatal);
  Frame Good = readFrame(In, Limits);
  ASSERT_EQ(Good.Kind, FrameKind::Sched);
  EXPECT_EQ(Good.Req.Id, "good");
  EXPECT_EQ(readFrame(In, Limits).Kind, FrameKind::Eof);
}

TEST(ServiceServer, SolvesAndServesFromCacheOnResubmission) {
  Server S(quickOptions());
  std::vector<std::string> Lines =
      serve(S, schedFrame("r1") + schedFrame("r2") + "QUIT\n");
  ASSERT_EQ(Lines.size(), 2u);

  // Responses may complete out of order in general; with one worker
  // they are ordered, but match on id anyway.
  const std::string &First = field(Lines[0], "id") == "r1" ? Lines[0]
                                                           : Lines[1];
  const std::string &Second = field(Lines[0], "id") == "r1" ? Lines[1]
                                                            : Lines[0];
  EXPECT_EQ(field(First, "status"), "ok") << First;
  EXPECT_EQ(field(Second, "status"), "ok") << Second;
  EXPECT_EQ(field(First, "cache_hit"), "false") << First;
  EXPECT_EQ(field(Second, "cache_hit"), "true")
      << "identical resubmission not served from cache: " << Second;
  EXPECT_EQ(field(First, "ii"), field(Second, "ii"));
  EXPECT_EQ(field(First, "secondary"), field(Second, "secondary"));
  EXPECT_EQ(field(First, "canonical_hash"), field(Second, "canonical_hash"));
  EXPECT_FALSE(field(Second, "canonical_hash").empty());

  ServerStats Stats = S.stats();
  EXPECT_EQ(Stats.Requests, 2);
  EXPECT_EQ(Stats.Completed, 2);
  EXPECT_GE(Stats.CacheHits, 1);
  EXPECT_EQ(Stats.Shed, 0);
}

TEST(ServiceServer, BadPayloadsGetStructuredErrors) {
  Server S(quickOptions());
  std::string BadDdg = "SCHED id=bad1 machine=example3\nDDG 1\n"
                       "this is not a ddg\nEND\n";
  MachineModel M = MachineModel::example3();
  std::string Ddg = exampleDdg();
  std::string BadMachine = "SCHED id=bad2\nMACHINE 1\nnot a machine\n";
  BadMachine += "DDG " + std::to_string(countLines(Ddg)) + "\n" + Ddg + "END\n";
  std::vector<std::string> Lines = serve(S, BadDdg + BadMachine + "QUIT\n");
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &L : Lines) {
    EXPECT_EQ(field(L, "status"), "error") << L;
    EXPECT_FALSE(field(L, "error").empty()) << L;
  }
  EXPECT_EQ(S.stats().Errors, 2);
}

TEST(ServiceServer, ShedsWhenStopping) {
  Server S(quickOptions());
  S.requestShutdown();
  std::vector<std::string> Lines = serve(S, schedFrame("late"));
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_EQ(field(Lines[0], "status"), "retry_after") << Lines[0];
  EXPECT_FALSE(field(Lines[0], "retry_after_ms").empty());
  EXPECT_EQ(S.stats().Shed, 1);
  EXPECT_EQ(S.stats().Accepted, 0);
}

TEST(ServiceServer, SurvivesMidRequestDisconnect) {
  Server S(quickOptions());
  // Stream dies inside a DDG payload: fatal framing error, reply
  // written, connection torn down — and the server keeps serving.
  std::vector<std::string> Lines =
      serve(S, "SCHED id=gone machine=example3\nDDG 50\nhalf a payload\n");
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_EQ(field(Lines[0], "status"), "error") << Lines[0];

  std::vector<std::string> After = serve(S, schedFrame("alive") + "QUIT\n");
  ASSERT_EQ(After.size(), 1u);
  EXPECT_EQ(field(After[0], "status"), "ok") << After[0];
}

TEST(ServiceServer, PingStatsAndGracefulQuit) {
  Server S(quickOptions());
  std::vector<std::string> Lines =
      serve(S, "PING\n" + schedFrame("last") + "STATS\nQUIT\n");
  ASSERT_GE(Lines.size(), 3u);
  EXPECT_EQ(field(Lines[0], "pong"), "true") << Lines[0];
  bool SawStats = false, SawSolve = false;
  for (const std::string &L : Lines) {
    if (L.find("\"stats\":") != std::string::npos)
      SawStats = true;
    if (field(L, "id") == "last" && field(L, "status") == "ok")
      SawSolve = true;
  }
  EXPECT_TRUE(SawStats);
  EXPECT_TRUE(SawSolve) << "QUIT must still drain the admitted request";
}

TEST(ServiceServer, UnixSocketSmoke) {
  std::string Path =
      "/tmp/modsched-servicetest-" + std::to_string(::getpid()) + ".sock";
  Server S(quickOptions());
  std::string Error;
  ASSERT_TRUE(S.listenUnix(Path, &Error)) << Error;
  std::thread Acceptor([&S] { S.acceptLoop(); });

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0)
      << std::strerror(errno);

  const char Msg[] = "PING\nQUIT\n";
  ASSERT_EQ(::send(Fd, Msg, sizeof(Msg) - 1, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(Msg) - 1));
  ::shutdown(Fd, SHUT_WR);
  std::string Reply;
  char Buf[256];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Reply.append(Buf, static_cast<std::size_t>(N));
  ::close(Fd);
  EXPECT_NE(Reply.find("\"pong\":true"), std::string::npos) << Reply;

  S.requestShutdown();
  Acceptor.join();
  ::unlink(Path.c_str());
}

} // namespace
