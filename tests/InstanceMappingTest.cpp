//===- tests/InstanceMappingTest.cpp - Altman-style mapping tests ----------===//
//
// Tests of the instance-mapped resource formulation ([5]): every
// operation must hold one specific instance of each resource type for
// its whole usage pattern. On machines with multi-cycle patterns this is
// strictly stronger than the counting constraints of Ineq. (5).
//
//===----------------------------------------------------------------------===//

#include "ilpsched/Formulation.h"

#include "ilp/BranchAndBound.h"
#include "sched/Mii.h"
#include "sched/Verifier.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;
using namespace modsched::ilp;

namespace {

/// Machine with one dual-cycle resource: class "pair" holds one of the
/// two X instances for cycles 0 AND 1.
MachineModel dualUseMachine() {
  MachineModel M;
  M.setName("dualuse");
  int X = M.addResource("x", 2);
  M.addOpClass("pair", 1, {{X, 0}, {X, 1}});
  M.addOpClass("simple", 1, {{X, 0}});
  return M;
}

/// Three independent dual-use operations.
DependenceGraph threePairOps(const MachineModel &M) {
  DependenceGraph G;
  G.setName("three-pairs");
  int Pair = *M.findOpClass("pair");
  G.addOperation("p0", Pair);
  G.addOperation("p1", Pair);
  G.addOperation("p2", Pair);
  return G;
}

FormulationOptions mappedOpts(bool Mapped) {
  FormulationOptions Opts;
  Opts.InstanceMapped = Mapped;
  return Opts;
}

} // namespace

TEST(InstanceMapping, CountingAcceptsIi3) {
  // 6 reservations fit 2 instances x 3 rows exactly: counting says yes.
  MachineModel M = dualUseMachine();
  DependenceGraph G = threePairOps(M);
  Formulation F(G, M, 3, mappedOpts(false));
  ASSERT_TRUE(F.valid());
  MipResult R = MipSolver().solve(F.model());
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  ModuloSchedule S = F.decode(R.Values);
  EXPECT_FALSE(verifySchedule(G, M, S).has_value());
}

TEST(InstanceMapping, MappingRejectsIi3OddCycle) {
  // The three patterns pairwise overlap in some row (an odd conflict
  // cycle): no assignment to 2 instances exists, so the mapped ILP must
  // prove II=3 infeasible even though counting accepted it.
  MachineModel M = dualUseMachine();
  DependenceGraph G = threePairOps(M);
  Formulation F(G, M, 3, mappedOpts(true));
  ASSERT_TRUE(F.valid());
  MipResult R = MipSolver().solve(F.model());
  EXPECT_EQ(R.Status, MipStatus::Infeasible);
}

TEST(InstanceMapping, MappingAcceptsIi4) {
  MachineModel M = dualUseMachine();
  DependenceGraph G = threePairOps(M);
  Formulation F(G, M, 4, mappedOpts(true));
  ASSERT_TRUE(F.valid());
  MipResult R = MipSolver().solve(F.model());
  ASSERT_EQ(R.Status, MipStatus::Optimal);
  ModuloSchedule S = F.decode(R.Values);
  EXPECT_FALSE(verifySchedule(G, M, S).has_value());

  // Decode a consistent instance assignment: no two ops sharing an
  // instance may overlap in any row.
  int X = 0;
  int Inst[3];
  for (int Op = 0; Op < 3; ++Op) {
    Inst[Op] = F.decodeInstance(R.Values, Op, X);
    ASSERT_GE(Inst[Op], 0);
    ASSERT_LT(Inst[Op], 2);
  }
  auto RowsOf = [&S](int Op) {
    return std::pair<int, int>{S.row(Op), (S.row(Op) + 1) % S.ii()};
  };
  for (int A = 0; A < 3; ++A)
    for (int B = A + 1; B < 3; ++B) {
      if (Inst[A] != Inst[B])
        continue;
      auto [A0, A1] = RowsOf(A);
      auto [B0, B1] = RowsOf(B);
      EXPECT_TRUE(A0 != B0 && A0 != B1 && A1 != B0 && A1 != B1)
          << "ops " << A << " and " << B << " share instance and a row";
    }
}

TEST(InstanceMapping, StructuredModelRemainsZeroOne) {
  MachineModel M = dualUseMachine();
  DependenceGraph G = threePairOps(M);
  Formulation F(G, M, 4, mappedOpts(true));
  ASSERT_TRUE(F.valid());
  EXPECT_TRUE(F.model().isZeroOneStructured());
}

TEST(InstanceMapping, SingleInstanceTypesFallBackToCounting) {
  // vliw2 has only count-1 resources: mapped and counting models must
  // have identical variable counts.
  MachineModel M = MachineModel::vliw2();
  DependenceGraph G = daxpy(M);
  Formulation A(G, M, mii(G, M), mappedOpts(false));
  Formulation B(G, M, mii(G, M), mappedOpts(true));
  ASSERT_TRUE(A.valid() && B.valid());
  EXPECT_EQ(A.model().numVariables(), B.model().numVariables());
  EXPECT_EQ(A.model().numConstraints(), B.model().numConstraints());
}

TEST(InstanceMapping, MappedIiNeverBelowCountingIi) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G :
       {paperExample1(M), daxpy(M), stencil3(M), livermore12(M)}) {
    int CountingII = -1, MappedII = -1;
    for (int II = mii(G, M); II < mii(G, M) + 6; ++II) {
      if (CountingII < 0) {
        Formulation F(G, M, II, mappedOpts(false));
        if (F.valid() && MipSolver().solve(F.model()).HasSolution)
          CountingII = II;
      }
      if (MappedII < 0) {
        Formulation F(G, M, II, mappedOpts(true));
        if (F.valid() && MipSolver().solve(F.model()).HasSolution)
          MappedII = II;
      }
      if (CountingII >= 0 && MappedII >= 0)
        break;
    }
    ASSERT_GE(CountingII, 0) << G.name();
    ASSERT_GE(MappedII, 0) << G.name();
    EXPECT_GE(MappedII, CountingII) << G.name();
  }
}

TEST(InstanceMapping, DecodeInstanceReturnsMinusOneWhenUnmapped) {
  MachineModel M = dualUseMachine();
  DependenceGraph G = threePairOps(M);
  Formulation F(G, M, 4, mappedOpts(false));
  ASSERT_TRUE(F.valid());
  MipResult R = MipSolver().solve(F.model());
  ASSERT_TRUE(R.HasSolution);
  EXPECT_EQ(F.decodeInstance(R.Values, 0, 0), -1);
}
