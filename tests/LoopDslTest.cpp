//===- tests/LoopDslTest.cpp - loop language frontend tests ----------------===//

#include "frontend/LoopDsl.h"

#include "graph/GraphAlgorithms.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/Mii.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "workloads/KernelLibrary.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

DependenceGraph compileOk(const std::string &Source, const MachineModel &M) {
  std::string Error;
  auto G = compileLoopDsl(Source, M, &Error);
  EXPECT_TRUE(G.has_value()) << Error;
  return G.value_or(DependenceGraph());
}

} // namespace

TEST(LoopDsl, DaxpyShape) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = compileOk("loop daxpy { y[i] = y[i] + a * x[i]; }", M);
  EXPECT_EQ(G.name(), "daxpy");
  // load y, load x, mul, add, store = 5 ops.
  EXPECT_EQ(G.numOperations(), 5);
  EXPECT_EQ(G.numRegisters(), 4); // Both loads, mul, add produce values.
  EXPECT_FALSE(hasZeroDistanceCycle(G));
  // The load of y[i] and the store to y[i] carry an anti dependence.
  bool AntiEdge = false;
  for (const SchedEdge &E : G.schedEdges())
    AntiEdge |= G.operation(E.Src).Name == "ld_y_0" &&
                G.operation(E.Dst).Name == "st_y_0" && E.Distance == 0;
  EXPECT_TRUE(AntiEdge);
}

TEST(LoopDsl, PaperExample1Equivalent) {
  // y[i] = x[i]*x[i] - x[i] - a: same shape as the hand-built kernel
  // (x loaded once, reused three times).
  MachineModel M = MachineModel::example3();
  DependenceGraph G =
      compileOk("loop ex1 { y[i] = x[i]*x[i] - x[i] - a; }", M);
  // ld x, mul, sub, sub, st = 5 ops (the paper folds "-x-a" into one
  // sub; the DSL emits two, one of which consumes the invariant a).
  EXPECT_EQ(G.numOperations(), 5);
  EXPECT_EQ(mii(G, M), 2); // Still 5 ops on 3 FUs.

  SchedulerOptions Opts;
  Opts.Formulation.Obj = Objective::MinReg;
  OptimalModuloScheduler Sched(M, Opts);
  ScheduleResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.II, 2);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(LoopDsl, ScalarRecurrenceCarries) {
  // s read before its assignment: previous-iteration value, distance 1.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = compileOk("loop sum { s = s + y[i]; x[i] = s; }", M);
  EXPECT_GT(recMii(G), 0);
  bool Carried = false;
  for (const SchedEdge &E : G.schedEdges())
    Carried |= E.Distance == 1 && E.Src == E.Dst;
  EXPECT_TRUE(Carried) << G.toString();
}

TEST(LoopDsl, ScalarReadAfterWriteSameIteration) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G =
      compileOk("loop t { t = x[i] * 2; y[i] = t + t; }", M);
  // t defined then read twice in-iteration: no recurrence.
  EXPECT_EQ(recMii(G), 1);
  EXPECT_FALSE(hasZeroDistanceCycle(G));
}

TEST(LoopDsl, StoreToLoadForwarding) {
  // Reading y[i] after writing it must reuse the stored value, not
  // reload.
  MachineModel M = MachineModel::example3();
  DependenceGraph G =
      compileOk("loop f { y[i] = x[i] + 1; z[i] = y[i] * 2; }", M);
  for (const Operation &Op : G.operations())
    EXPECT_NE(Op.Name, "ld_y_0") << "load should have been forwarded";
}

TEST(LoopDsl, CrossIterationLoadElimination) {
  // a[i+1] = a[i] * s: the frontend performs load-back-substitution (an
  // optimization the paper assumes pre-applied): a[i] is last
  // iteration's multiply result, carried in a register — no reload.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = compileOk("loop rec { a[i+1] = a[i] * s; }", M);
  for (const Operation &Op : G.operations())
    EXPECT_NE(Op.Name.rfind("ld_", 0), 0u)
        << "load should have been eliminated: " << Op.Name;
  bool CarriedFlow = false;
  for (const SchedEdge &E : G.schedEdges())
    CarriedFlow |= E.Src == E.Dst && E.Distance == 1; // mul -> mul.
  EXPECT_TRUE(CarriedFlow) << G.toString();
  EXPECT_EQ(recMii(G), 4); // mul latency 4 over distance 1.
}

TEST(LoopDsl, MultiStoreArrayKeepsLoads) {
  // Two stores to the same array make value tracking ambiguous: the
  // frontend must fall back to an explicit load + memory dependences.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = compileOk(
      "loop two { b[i] = a[i-1] + 1; a[i] = x[i]; a[i+1] = y[i]; }", M);
  bool HasLoadA = false;
  for (const Operation &Op : G.operations())
    HasLoadA |= Op.Name == "ld_a_m1";
  EXPECT_TRUE(HasLoadA) << G.toString();
}

TEST(LoopDsl, LoadDeduplication) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G =
      compileOk("loop d { y[i] = x[i] * x[i] + x[i+1] * x[i+1]; }", M);
  int Loads = 0;
  for (const Operation &Op : G.operations())
    Loads += Op.Name.rfind("ld_", 0) == 0;
  EXPECT_EQ(Loads, 2); // x[i] and x[i+1], each once.
}

TEST(LoopDsl, InvariantScalarAssignmentGetsCopy) {
  MachineModel M = MachineModel::example3();
  DependenceGraph G = compileOk("loop c { t = q; y[i] = t; }", M);
  bool HasCopy = false;
  for (const Operation &Op : G.operations())
    HasCopy |= Op.Name == "cp_t";
  EXPECT_TRUE(HasCopy);
}

TEST(LoopDsl, LivermoreFirstSumMatchesHandKernel) {
  // x[k] = x[k-1] + y[k]: with load-back-substitution the recurrence
  // runs through the add alone, exactly like the hand-translated
  // livermore11 kernel (RecMII 1, not a 3-cycle memory round trip).
  MachineModel M = MachineModel::example3();
  DependenceGraph Dsl =
      compileOk("loop l11 { x[i] = x[i-1] + y[i]; }", M);
  DependenceGraph Hand = livermore11(M);
  EXPECT_EQ(recMii(Dsl), recMii(Hand));
  EXPECT_EQ(recMii(Dsl), 1);
}

TEST(LoopDsl, DiagnosticsCarryPositions) {
  MachineModel M = MachineModel::example3();
  std::string Error;
  EXPECT_FALSE(compileLoopDsl("loop x {\n  y[i] = ;\n}", M, &Error));
  EXPECT_NE(Error.find("2:"), std::string::npos) << Error;
  EXPECT_NE(Error.find("expected expression"), std::string::npos);

  EXPECT_FALSE(compileLoopDsl("loop x { y[j] = 1; }", M, &Error));
  EXPECT_NE(Error.find("index must be 'i'"), std::string::npos);

  EXPECT_FALSE(compileLoopDsl("noloop", M, &Error));
  EXPECT_NE(Error.find("expected 'loop'"), std::string::npos);

  EXPECT_FALSE(compileLoopDsl("loop x { y[i] = 1; ", M, &Error));
  EXPECT_NE(Error.find("unexpected end"), std::string::npos);

  EXPECT_FALSE(compileLoopDsl("loop empty { }", M, &Error));
  EXPECT_NE(Error.find("no operations"), std::string::npos);
}

TEST(LoopDsl, EndToEndSchedulesAndVerifies) {
  MachineModel M = MachineModel::cydraLike();
  const char *Sources[] = {
      "loop daxpy { y[i] = y[i] + a * x[i]; }",
      "loop tridiag { x[i] = z[i] * (y[i] - x[i-1]); }",
      "loop stencil { b[i] = s * (a[i-1] + a[i] + a[i+1]); }",
      "loop horner { p = p * x0 + c[i]; y[i] = p; }",
  };
  for (const char *Src : Sources) {
    DependenceGraph G = compileOk(Src, M);
    SchedulerOptions Opts;
    Opts.TimeLimitSeconds = 20.0;
    OptimalModuloScheduler Sched(M, Opts);
    ScheduleResult R = Sched.schedule(G);
    ASSERT_TRUE(R.Found) << Src;
    EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value()) << Src;
    EXPECT_GE(R.II, mii(G, M));
  }
}
