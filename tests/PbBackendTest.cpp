//===- tests/PbBackendTest.cpp - PB-vs-ILP backend differential ------------===//
//
// The CDCL pseudo-Boolean backend and the branch-and-bound ILP backend
// encode the same feasible set per II (PbFormulation mirrors
// Formulation's windows, budgets, and rows), so on every loop they must
// agree on the feasible-II verdict, the achieved II, and the optimal
// secondary objective value. These tests enforce that differential over
// the full kernel library and a synthetic suite, and exercise the
// backend seam itself (env default, fallback, budgets, parallel race).
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"
#include "ilpsched/PbFormulation.h"
#include "sched/PipelineSimulator.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "support/Rng.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <gtest/gtest.h>

using namespace modsched;

namespace {

SchedulerOptions backendOpts(SchedulerBackend Backend, Objective Obj) {
  SchedulerOptions Opts;
  Opts.Backend = Backend;
  Opts.Formulation.Obj = Obj;
  Opts.TimeLimitSeconds = 30.0;
  return Opts;
}

/// Runs both backends on (M, G, Obj) and checks the differential:
/// identical Found verdict, identical II, identical objective value, and
/// an independently verified + simulated PB schedule. Censored runs
/// (either backend) prove nothing and are skipped, per the repo
/// convention for budgeted solves. Returns false when censored.
bool expectBackendsAgree(const MachineModel &M, const DependenceGraph &G,
                         Objective Obj) {
  OptimalModuloScheduler IlpSched(M, backendOpts(SchedulerBackend::Ilp, Obj));
  OptimalModuloScheduler PbSched(M, backendOpts(SchedulerBackend::Pb, Obj));
  ScheduleResult A = IlpSched.schedule(G);
  ScheduleResult B = PbSched.schedule(G);
  if (A.TimedOut || A.NodeLimitHit || B.TimedOut || B.NodeLimitHit)
    return false;
  EXPECT_EQ(A.Found, B.Found) << M.name() << "/" << G.name();
  if (!A.Found || !B.Found)
    return true;
  EXPECT_EQ(A.II, B.II) << M.name() << "/" << G.name();
  EXPECT_EQ(A.Mii, B.Mii) << M.name() << "/" << G.name();
  EXPECT_NEAR(A.SecondaryObjective, B.SecondaryObjective, 1e-6)
      << M.name() << "/" << G.name();
  EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value())
      << M.name() << "/" << G.name();
  EXPECT_FALSE(simulateSchedule(G, M, B.Schedule,
                                B.Schedule.numStages() + 24)
                   .Violation.has_value())
      << M.name() << "/" << G.name();
  // The PB run must actually have run the PB engine.
  EXPECT_GT(B.PbPropagations, 0) << M.name() << "/" << G.name();
  EXPECT_EQ(B.Nodes, 0) << M.name() << "/" << G.name();
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Kernel-library differential
//===----------------------------------------------------------------------===//

TEST(PbBackend, KernelLibraryNoObjAgreesWithIlp) {
  for (MachineModel M : {MachineModel::example3(), MachineModel::vliw2(),
                         MachineModel::cydraLike()})
    for (const DependenceGraph &G : allKernels(M))
      expectBackendsAgree(M, G, Objective::None);
}

TEST(PbBackend, KernelLibraryMinBuffAgreesWithIlp) {
  MachineModel M = MachineModel::example3();
  for (const DependenceGraph &G : allKernels(M))
    expectBackendsAgree(M, G, Objective::MinBuff);
}

TEST(PbBackend, KernelLibraryMinLifeAgreesWithIlp) {
  // The lifetime objectives are the expensive ones on both backends;
  // keep this differential to small kernels so the test stays budgeted
  // (the fuzz leg covers MinBuff broadly, E11 measures the rest).
  MachineModel M = MachineModel::vliw2();
  for (const DependenceGraph &G :
       {paperExample1(M), livermore5(M), livermore11(M), dotProduct(M)})
    expectBackendsAgree(M, G, Objective::MinLife);
}

TEST(PbBackend, PaperExample1MinRegIs7) {
  // Figure 1e: minimum MaxLive at II=2 is exactly 7 — the PB backend
  // reproduces the paper's headline register number.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  OptimalModuloScheduler Sched(M,
                               backendOpts(SchedulerBackend::Pb,
                                           Objective::MinReg));
  ScheduleResult R = Sched.schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.II, 2);
  EXPECT_NEAR(R.SecondaryObjective, 7.0, 1e-6);
  EXPECT_EQ(computeRegisterPressure(G, R.Schedule).MaxLive, 7);
  EXPECT_GT(R.PbConflicts + R.PbPropagations, 0);
}

TEST(PbBackend, MinRegAgreesOnKernels) {
  MachineModel M = MachineModel::example3();
  for (const DependenceGraph &G :
       {paperExample1(M), livermore5(M), livermore11(M), dotProduct(M),
        daxpy(M)})
    expectBackendsAgree(M, G, Objective::MinReg);
}

TEST(PbBackend, TraditionalDependenceStyleAgrees) {
  // Ineq. (4) becomes a general PB row (coefficients r and II) — the
  // same slow-by-design ablation the ILP offers; keep it to one small
  // kernel with a node budget, per the repo convention.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SchedulerOptions IlpOpts = backendOpts(SchedulerBackend::Ilp,
                                         Objective::None);
  SchedulerOptions PbOpts = backendOpts(SchedulerBackend::Pb,
                                        Objective::None);
  IlpOpts.Formulation.DepStyle = DependenceStyle::Traditional;
  PbOpts.Formulation.DepStyle = DependenceStyle::Traditional;
  IlpOpts.NodeLimit = 200000;
  PbOpts.NodeLimit = 200000;
  ScheduleResult A = OptimalModuloScheduler(M, IlpOpts).schedule(G);
  ScheduleResult B = OptimalModuloScheduler(M, PbOpts).schedule(G);
  if (A.TimedOut || A.NodeLimitHit || B.TimedOut || B.NodeLimitHit)
    GTEST_SKIP() << "censored traditional-formulation solve";
  ASSERT_TRUE(A.Found && B.Found);
  EXPECT_EQ(A.II, B.II);
  EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value());
}

TEST(PbBackend, RegisterLimitAgreesWithIlp) {
  // Register-constrained scheduling: a hard per-row cap forces II above
  // MII identically under both backends.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  for (int Limit : {7, 6, 5}) {
    SchedulerOptions IlpOpts = backendOpts(SchedulerBackend::Ilp,
                                           Objective::None);
    SchedulerOptions PbOpts = backendOpts(SchedulerBackend::Pb,
                                          Objective::None);
    IlpOpts.Formulation.RegisterLimit = Limit;
    PbOpts.Formulation.RegisterLimit = Limit;
    ScheduleResult A = OptimalModuloScheduler(M, IlpOpts).schedule(G);
    ScheduleResult B = OptimalModuloScheduler(M, PbOpts).schedule(G);
    if (A.TimedOut || B.TimedOut)
      continue;
    ASSERT_EQ(A.Found, B.Found) << "limit=" << Limit;
    if (!A.Found)
      continue;
    EXPECT_EQ(A.II, B.II) << "limit=" << Limit;
    EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value());
    EXPECT_LE(computeRegisterPressure(G, B.Schedule).MaxLive, Limit);
  }
}

//===----------------------------------------------------------------------===//
// Synthetic differential (12-seed suite)
//===----------------------------------------------------------------------===//

class PbBackendSyntheticTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PbBackendSyntheticTest, AgreesWithIlp) {
  MachineModel M = MachineModel::cydraLike();
  Rng R(GetParam() * 7919 + 13);
  SyntheticOptions Opts;
  Opts.MinOps = 3;
  Opts.MaxOps = 12;
  DependenceGraph G = generateLoop(M, R, Opts);
  expectBackendsAgree(M, G, Objective::None);
  // Objective-value differential on the same loop.
  expectBackendsAgree(M, G, Objective::MinBuff);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbBackendSyntheticTest,
                         ::testing::Range<uint64_t>(0, 12));

//===----------------------------------------------------------------------===//
// Backend seam behavior
//===----------------------------------------------------------------------===//

TEST(PbBackend, SupportsMatrix) {
  FormulationOptions O;
  EXPECT_TRUE(PbFormulation::supports(O));
  O.DepStyle = DependenceStyle::Traditional;
  EXPECT_TRUE(PbFormulation::supports(O));
  O = {};
  O.InstanceMapped = true;
  EXPECT_FALSE(PbFormulation::supports(O));
  O = {};
  O.Obj = Objective::MinSL;
  EXPECT_FALSE(PbFormulation::supports(O));
  O = {};
  O.Obj = Objective::MinBuff;
  O.ObjStyle = ObjectiveStyle::Traditional;
  EXPECT_FALSE(PbFormulation::supports(O));
  O.ObjStyle = ObjectiveStyle::Structured;
  EXPECT_TRUE(PbFormulation::supports(O));
}

TEST(PbBackend, UnsupportedFormulationFallsBackToIlp) {
  // MinSL is not PB-encodable; the scheduler must warn (once) and decide
  // the loop with the ILP rather than fail.
  MachineModel M = MachineModel::example3();
  DependenceGraph G = paperExample1(M);
  SchedulerOptions Opts = backendOpts(SchedulerBackend::Pb,
                                      Objective::MinSL);
  ScheduleResult R = OptimalModuloScheduler(M, Opts).schedule(G);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.SimplexIterations, 0); // The ILP ran...
  EXPECT_EQ(R.PbConflicts, 0);       // ...and the PB engine never did.
  EXPECT_EQ(R.PbPropagations, 0);
  EXPECT_FALSE(verifySchedule(G, M, R.Schedule).has_value());
}

TEST(PbBackend, ConflictBudgetCensorsSearch) {
  // The shared node budget counts CDCL conflicts under the PB backend;
  // an absurdly small budget must censor (or finish within it) and be
  // attributed to NodeLimitHit, never TimedOut.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = complexMultiply(M);
  SchedulerOptions Opts = backendOpts(SchedulerBackend::Pb,
                                      Objective::MinReg);
  Opts.NodeLimit = 1;
  ScheduleResult R = OptimalModuloScheduler(M, Opts).schedule(G);
  EXPECT_TRUE(R.Found || R.NodeLimitHit);
  if (!R.Found) {
    EXPECT_FALSE(R.TimedOut);
    EXPECT_LE(R.budgetNodes(), 2); // Stopped essentially immediately.
  }
}

TEST(PbBackend, ParallelRaceMatchesSequential) {
  MachineModel M = MachineModel::cydraLike();
  for (const DependenceGraph &G :
       {secondOrderRecurrence(M), livermore5(M), stencil3(M)}) {
    SchedulerOptions Seq = backendOpts(SchedulerBackend::Pb,
                                       Objective::None);
    SchedulerOptions Race = Seq;
    Race.Search = IiSearchKind::ParallelRace;
    Race.SearchJobs = 4;
    ScheduleResult A = OptimalModuloScheduler(M, Seq).schedule(G);
    ScheduleResult B = OptimalModuloScheduler(M, Race).schedule(G);
    if (A.TimedOut || B.TimedOut)
      continue;
    ASSERT_TRUE(A.Found && B.Found) << G.name();
    EXPECT_EQ(A.II, B.II) << G.name();
    EXPECT_FALSE(verifySchedule(G, M, B.Schedule).has_value()) << G.name();
  }
}

TEST(PbBackend, AttemptTelemetryTellsTheStory) {
  // secondOrderRecurrence has MII below its feasible II on cydraLike, so
  // the attempts vector must show infeasible verdicts below the achieved
  // II and PB effort fields populated on decided attempts.
  MachineModel M = MachineModel::cydraLike();
  DependenceGraph G = secondOrderRecurrence(M);
  SchedulerOptions Opts = backendOpts(SchedulerBackend::Pb,
                                      Objective::None);
  ScheduleResult R = OptimalModuloScheduler(M, Opts).schedule(G);
  ASSERT_TRUE(R.Found);
  ASSERT_FALSE(R.Attempts.empty());
  const IiAttempt &Last = R.Attempts.back();
  EXPECT_EQ(Last.II, R.II);
  EXPECT_TRUE(Last.Scheduled);
  EXPECT_GT(Last.Variables, 0);
  EXPECT_GT(Last.Constraints, 0);
  EXPECT_EQ(Last.Nodes, 0);
  EXPECT_GT(Last.PbPropagations, 0);
  for (const IiAttempt &A : R.Attempts) {
    EXPECT_GE(A.II, R.Mii);
    EXPECT_LE(A.II, R.II);
    if (A.II < R.II)
      EXPECT_FALSE(A.Scheduled);
  }
}

TEST(PbBackend, BackendNamesRoundTrip) {
  EXPECT_STREQ(toString(SchedulerBackend::Ilp), "ilp");
  EXPECT_STREQ(toString(SchedulerBackend::Pb), "pb");
}
