#!/usr/bin/env python3
"""Enforce the library layering of src/ by scanning #include edges.

The layering (see CLAUDE.md and DESIGN.md) is:

    tier 0: support
    tier 1: lp, graph, machine, pb
    tier 2: ilp, sched
    tier 3: ilpsched, heuristic, codegen, workloads, textio, frontend
    tier 4: service

A file in library L may include headers of its own library and of any
library in a strictly LOWER tier — never a higher tier and never a
sibling library in the same tier. tests/, bench/, and examples/ sit
above every library and may include anything, so they are not scanned.

Only project-relative quoted includes ("lib/Header.h") are checked;
system includes and non-library quoted includes (e.g. bench's own
"Harness.h") are ignored. An include of an UNKNOWN library directory is
an error too — it means a new library was added without a tier
assignment here, which is exactly the drift this lint exists to catch.

Stdlib-only. Usage:

    python3 scripts/check_layering.py [SRC_DIR]      # default: src/
    python3 scripts/check_layering.py --self-check   # negative test

--self-check writes a synthetic upward include (support -> ilpsched)
into a temporary tree and verifies the checker rejects it, then checks
a legal edge passes; CI runs it before the real scan so a silently
broken checker cannot wave violations through.

Exits 0 iff no violation was found, printing one line per violation.
"""

import os
import re
import sys
import tempfile

TIERS = {
    "support": 0,
    "lp": 1,
    "graph": 1,
    "machine": 1,
    "pb": 1,
    "ilp": 2,
    "sched": 2,
    "ilpsched": 3,
    "heuristic": 3,
    "codegen": 3,
    "workloads": 3,
    "textio": 3,
    "frontend": 3,
    "service": 4,
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

SOURCE_SUFFIXES = (".h", ".hpp", ".cpp", ".cc")


def scan_tree(src_dir):
    """Returns a list of violation strings for one src/ tree."""
    violations = []
    for root, _dirs, files in os.walk(src_dir):
        rel_root = os.path.relpath(root, src_dir)
        lib = rel_root.split(os.sep)[0]
        if lib in (".", ""):
            continue  # files directly under src/ (CMakeLists.txt)
        if lib not in TIERS:
            violations.append(f"{os.path.join(rel_root)}: library "
                              f"{lib!r} has no tier assignment in "
                              f"scripts/check_layering.py")
            continue
        for name in sorted(files):
            if not name.endswith(SOURCE_SUFFIXES):
                continue
            path = os.path.join(root, name)
            rel_path = os.path.relpath(path, src_dir)
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                for lineno, line in enumerate(f, 1):
                    match = INCLUDE_RE.match(line)
                    if not match:
                        continue
                    target = match.group(1).split("/")[0]
                    if "/" not in match.group(1):
                        continue  # non-library include ("Harness.h")
                    if target not in TIERS:
                        violations.append(
                            f"{rel_path}:{lineno}: include of unknown "
                            f"library {target!r} (assign it a tier in "
                            f"scripts/check_layering.py)")
                        continue
                    if target == lib:
                        continue
                    if TIERS[target] >= TIERS[lib]:
                        kind = ("upward" if TIERS[target] > TIERS[lib]
                                else "same-tier")
                        violations.append(
                            f"{rel_path}:{lineno}: {kind} include "
                            f"{lib!r} (tier {TIERS[lib]}) -> {target!r} "
                            f"(tier {TIERS[target]})")
    return violations


def self_check():
    """Verifies the checker flags a synthetic upward include."""
    with tempfile.TemporaryDirectory() as tmp:
        bad_dir = os.path.join(tmp, "support")
        os.makedirs(bad_dir)
        with open(os.path.join(bad_dir, "Bad.h"), "w",
                  encoding="utf-8") as f:
            f.write('#include "ilpsched/OptimalScheduler.h"\n')
        violations = scan_tree(tmp)
        if len(violations) != 1 or "upward include" not in violations[0]:
            print("self-check FAIL: synthetic upward include not "
                  "flagged exactly once:", violations)
            return 1
        with open(os.path.join(bad_dir, "Bad.h"), "w",
                  encoding="utf-8") as f:
            f.write('#include "support/Hash.h"\n#include <vector>\n')
        violations = scan_tree(tmp)
        if violations:
            print("self-check FAIL: legal include flagged:", violations)
            return 1
    print("self-check ok: upward include flagged, legal include passed")
    return 0


def main(argv):
    if "--self-check" in argv[1:]:
        return self_check()
    src_dir = argv[1] if len(argv) > 1 else "src"
    if not os.path.isdir(src_dir):
        print(f"error: {src_dir} is not a directory", file=sys.stderr)
        return 2
    violations = scan_tree(src_dir)
    for line in violations:
        print(f"LAYER {line}")
    n_files = sum(
        1 for root, _d, files in os.walk(src_dir)
        for f in files if f.endswith(SOURCE_SUFFIXES))
    print(f"checked {n_files} file(s): {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
