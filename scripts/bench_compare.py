#!/usr/bin/env python3
"""Compare two bench_results directories and flag regressions.

Pairs BENCH_*.json artifacts by filename (baseline dir vs candidate
dir), matches records by (record-set label, loop name), and reports:

  * coverage regressions - loops the baseline solved that the candidate
    did not (status solved -> timeout/unsolved/node_limit);
  * coverage improvements - the reverse (informational);
  * solver-time regressions - solved-in-both loops whose candidate
    seconds exceed baseline seconds by more than --threshold (default
    20%), ignoring loops faster than --min-seconds in both runs (timer
    noise dominates below that) and loops served from the solution
    cache in either run (cache_hit=true, schema 8: replay time
    measures the cache, not the solver, so such pairs say nothing
    about solver speed);
  * cache-counter drift - the v8 top-level cache_counters snapshot is
    diffed when it changed; an artifact lacking the block (schema < 8,
    or a hand-trimmed file) is treated as all-zero counters rather than
    crashing, and a candidate whose cache went cold (baseline served
    hits, candidate served none with the cache still configured on) is
    flagged as a regression;
  * artifacts present in only one directory (informational).

Exits nonzero iff any coverage or solver-time regression was found, so
CI can gate on it. Comparing a directory against itself is the CI smoke
test: it must report nothing and exit 0. `--self-test` builds throwaway
artifact pairs (with and without the cache_counters block) in a temp
directory and checks the comparator's own behavior, exiting nonzero on
any deviation.

Stdlib-only. Usage:

    python3 scripts/bench_compare.py BASELINE_DIR CANDIDATE_DIR \
        [--threshold 0.20] [--min-seconds 0.05]
    python3 scripts/bench_compare.py --self-test
"""

import argparse
import json
import os
import sys
import tempfile

CACHE_COUNTER_KEYS = ("hits", "misses", "inserts", "evictions")


def load_doc(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def doc_records(doc):
    """Maps (record-set label, loop name) -> record for one artifact."""
    records = {}
    for record_set in doc.get("record_sets", []):
        label = record_set.get("label", "")
        for record in record_set.get("records", []):
            records[(label, record.get("name", ""))] = record
    return records


def cache_counters(doc):
    """The v8 cache_counters block with missing block/keys as zeros.

    Pre-v8 artifacts have no such block at all; indexing it directly
    used to KeyError the whole comparison. Absence means "this run
    recorded no cache activity", which zeros state exactly.
    """
    block = doc.get("cache_counters") or {}
    return {key: int(block.get(key, 0)) for key in CACHE_COUNTER_KEYS}


def compare_cache_counters(name, base_doc, cand_doc):
    """Returns (regressions, notes) for one artifact pair's counters."""
    base = cache_counters(base_doc)
    cand = cache_counters(cand_doc)
    regressions = []
    notes = []
    if base != cand:
        delta = ", ".join(f"{k} {base[k]} -> {cand[k]}"
                          for k in CACHE_COUNTER_KEYS if base[k] != cand[k])
        notes.append(f"{name} cache_counters: {delta}")
    cand_cache_on = bool(cand_doc.get("config", {}).get("cache", False))
    if base["hits"] > 0 and cand["hits"] == 0 and cand_cache_on:
        regressions.append(
            f"{name}: cache went cold (baseline served {base['hits']} "
            f"hit(s), candidate served none with cache on)")
    return regressions, notes


def compare_file(name, base_path, cand_path, threshold, min_seconds):
    """Returns (regressions, notes) line lists for one artifact pair."""
    base_doc = load_doc(base_path)
    cand_doc = load_doc(cand_path)
    base = doc_records(base_doc)
    cand = doc_records(cand_doc)
    regressions, notes = compare_cache_counters(name, base_doc, cand_doc)
    for key in sorted(set(base) - set(cand)):
        notes.append(f"{name} {key[0]}/{key[1]}: record dropped")
    for key in sorted(set(cand) - set(base)):
        notes.append(f"{name} {key[0]}/{key[1]}: record added")
    for key in sorted(set(base) & set(cand)):
        b, c = base[key], cand[key]
        where = f"{name} {key[0]}/{key[1]}"
        if b.get("solved") and not c.get("solved"):
            regressions.append(
                f"{where}: coverage regression (solved -> "
                f"{c.get('status', '?')})")
            continue
        if not b.get("solved") and c.get("solved"):
            notes.append(f"{where}: coverage improvement "
                         f"({b.get('status', '?')} -> solved)")
            continue
        if not (b.get("solved") and c.get("solved")):
            continue
        if b.get("cache_hit") or c.get("cache_hit"):
            # Cache-served records (schema 8) report replay time, not
            # solver time; comparing them would grade the wrong thing.
            continue
        bs, cs = b.get("seconds", 0.0), c.get("seconds", 0.0)
        if bs < min_seconds and cs < min_seconds:
            continue
        if bs > 0 and cs > bs * (1.0 + threshold):
            regressions.append(
                f"{where}: solver-time regression "
                f"{bs:.3f}s -> {cs:.3f}s (+{(cs / bs - 1.0) * 100:.0f}%)")
    return regressions, notes


def bench_files(directory):
    try:
        entries = os.listdir(directory)
    except OSError as err:
        raise SystemExit(f"error: cannot list {directory}: {err}")
    return {e for e in entries
            if e.startswith("BENCH_") and e.endswith(".json")}


def make_artifact(with_cache_counters, hits, solved=True, seconds=0.2,
                  cache_on=True):
    """A minimal artifact for the comparator self-test."""
    doc = {
        "schema_version": 8 if with_cache_counters else 7,
        "experiment": "selftest",
        "config": {"cache": cache_on},
        "record_sets": [{
            "label": "sweep",
            "records": [{
                "name": "loop0",
                "solved": solved,
                "status": "solved" if solved else "timeout",
                "seconds": seconds,
                "cache_hit": False,
            }],
        }],
    }
    if with_cache_counters:
        doc["cache_counters"] = {"hits": hits, "misses": 3, "inserts": 2,
                                 "evictions": 0}
    return doc


def self_test():
    """Exercises the comparator on constructed artifact pairs; returns
    the number of failed expectations (0 = pass)."""
    failures = 0

    def expect(ok, what):
        nonlocal failures
        if not ok:
            failures += 1
            print(f"SELF-TEST FAIL: {what}")

    with tempfile.TemporaryDirectory(prefix="bench_compare_selftest_") as tmp:
        base_dir = os.path.join(tmp, "base")
        cand_dir = os.path.join(tmp, "cand")
        os.mkdir(base_dir)
        os.mkdir(cand_dir)

        def write(directory, doc):
            path = os.path.join(directory, "BENCH_selftest.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            return path

        # 1. Baseline HAS the v8 block, candidate LACKS it entirely
        #    (the historical KeyError): must compare cleanly, treating
        #    the missing block as zeros -> "cache went cold" regression.
        b = write(base_dir, make_artifact(True, hits=5))
        c = write(cand_dir, make_artifact(False, hits=0))
        regs, notes = compare_file("BENCH_selftest.json", b, c, 0.2, 0.05)
        expect(any("cache went cold" in r for r in regs),
               "missing candidate block not treated as zero hits")
        expect(any("cache_counters" in n for n in notes),
               "counter drift note missing")

        # 2. The reverse direction (baseline pre-v8, candidate v8) and
        #    the both-missing case must produce no cache regressions.
        regs, _ = compare_file("BENCH_selftest.json", c, b, 0.2, 0.05)
        expect(not regs, f"reverse direction regressed: {regs}")
        c2 = write(cand_dir, make_artifact(False, hits=0))
        regs, notes = compare_file("BENCH_selftest.json", c, c2, 0.2, 0.05)
        expect(not regs and not notes,
               "both-missing pair was not silent")

        # 3. Zero hits with the cache configured OFF is not a
        #    regression (cache-off candidates never serve hits).
        c3 = write(cand_dir, make_artifact(True, hits=0, cache_on=False))
        regs, _ = compare_file("BENCH_selftest.json", b, c3, 0.2, 0.05)
        expect(not any("cache went cold" in r for r in regs),
               "cache-off candidate flagged as gone-cold")

        # 4. Identical artifacts: nothing at all (the CI smoke
        #    invariant), and the existing solver-time/coverage checks
        #    still fire through the new doc-loading path.
        regs, notes = compare_file("BENCH_selftest.json", b, b, 0.2, 0.05)
        expect(not regs and not notes, "self-comparison was not silent")
        slow = write(cand_dir, make_artifact(True, hits=5, seconds=10.0))
        regs, _ = compare_file("BENCH_selftest.json", b, slow, 0.2, 0.05)
        expect(any("solver-time regression" in r for r in regs),
               "solver-time regression not detected")
        lost = write(cand_dir, make_artifact(True, hits=5, solved=False))
        regs, _ = compare_file("BENCH_selftest.json", b, lost, 0.2, 0.05)
        expect(any("coverage regression" in r for r in regs),
               "coverage regression not detected")

    print(f"self-test: {'PASS' if failures == 0 else 'FAIL'} "
          f"({failures} failed expectation(s))")
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two bench_results directories")
    parser.add_argument("baseline", nargs="?",
                        help="baseline bench_results directory")
    parser.add_argument("candidate", nargs="?",
                        help="candidate bench_results directory")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative solver-time slowdown that counts as "
                             "a regression (default 0.20 = 20%%)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore loops faster than this in both runs "
                             "(default 0.05)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the comparator's self-test and exit")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate directories are required "
                     "(or use --self-test)")

    base_files = bench_files(args.baseline)
    cand_files = bench_files(args.candidate)
    regressions = []
    notes = []
    for name in sorted(base_files - cand_files):
        notes.append(f"{name}: only in baseline")
    for name in sorted(cand_files - base_files):
        notes.append(f"{name}: only in candidate")
    for name in sorted(base_files & cand_files):
        try:
            file_regressions, file_notes = compare_file(
                name, os.path.join(args.baseline, name),
                os.path.join(args.candidate, name), args.threshold,
                args.min_seconds)
        except (OSError, json.JSONDecodeError) as err:
            regressions.append(f"{name}: unreadable ({err})")
            continue
        regressions.extend(file_regressions)
        notes.extend(file_notes)

    for line in notes:
        print(f"note  {line}")
    for line in regressions:
        print(f"REGR  {line}")
    compared = len(base_files & cand_files)
    print(f"compared {compared} artifact(s): {len(regressions)} "
          f"regression(s), {len(notes)} note(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
