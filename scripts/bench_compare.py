#!/usr/bin/env python3
"""Compare two bench_results directories and flag regressions.

Pairs BENCH_*.json artifacts by filename (baseline dir vs candidate
dir), matches records by (record-set label, loop name), and reports:

  * coverage regressions - loops the baseline solved that the candidate
    did not (status solved -> timeout/unsolved/node_limit);
  * coverage improvements - the reverse (informational);
  * solver-time regressions - solved-in-both loops whose candidate
    seconds exceed baseline seconds by more than --threshold (default
    20%), ignoring loops faster than --min-seconds in both runs (timer
    noise dominates below that) and loops served from the solution
    cache in either run (cache_hit=true, schema 8: replay time
    measures the cache, not the solver, so such pairs say nothing
    about solver speed);
  * artifacts present in only one directory (informational).

Exits nonzero iff any coverage or solver-time regression was found, so
CI can gate on it. Comparing a directory against itself is the CI smoke
test: it must report nothing and exit 0.

Stdlib-only. Usage:

    python3 scripts/bench_compare.py BASELINE_DIR CANDIDATE_DIR \
        [--threshold 0.20] [--min-seconds 0.05]
"""

import argparse
import json
import os
import sys


def load_records(path):
    """Maps (record-set label, loop name) -> record for one artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    records = {}
    for record_set in doc.get("record_sets", []):
        label = record_set.get("label", "")
        for record in record_set.get("records", []):
            records[(label, record.get("name", ""))] = record
    return records


def compare_file(name, base_path, cand_path, threshold, min_seconds):
    """Returns (regressions, notes) line lists for one artifact pair."""
    base = load_records(base_path)
    cand = load_records(cand_path)
    regressions = []
    notes = []
    for key in sorted(set(base) - set(cand)):
        notes.append(f"{name} {key[0]}/{key[1]}: record dropped")
    for key in sorted(set(cand) - set(base)):
        notes.append(f"{name} {key[0]}/{key[1]}: record added")
    for key in sorted(set(base) & set(cand)):
        b, c = base[key], cand[key]
        where = f"{name} {key[0]}/{key[1]}"
        if b.get("solved") and not c.get("solved"):
            regressions.append(
                f"{where}: coverage regression (solved -> "
                f"{c.get('status', '?')})")
            continue
        if not b.get("solved") and c.get("solved"):
            notes.append(f"{where}: coverage improvement "
                         f"({b.get('status', '?')} -> solved)")
            continue
        if not (b.get("solved") and c.get("solved")):
            continue
        if b.get("cache_hit") or c.get("cache_hit"):
            # Cache-served records (schema 8) report replay time, not
            # solver time; comparing them would grade the wrong thing.
            continue
        bs, cs = b.get("seconds", 0.0), c.get("seconds", 0.0)
        if bs < min_seconds and cs < min_seconds:
            continue
        if bs > 0 and cs > bs * (1.0 + threshold):
            regressions.append(
                f"{where}: solver-time regression "
                f"{bs:.3f}s -> {cs:.3f}s (+{(cs / bs - 1.0) * 100:.0f}%)")
    return regressions, notes


def bench_files(directory):
    try:
        entries = os.listdir(directory)
    except OSError as err:
        raise SystemExit(f"error: cannot list {directory}: {err}")
    return {e for e in entries
            if e.startswith("BENCH_") and e.endswith(".json")}


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two bench_results directories")
    parser.add_argument("baseline", help="baseline bench_results directory")
    parser.add_argument("candidate", help="candidate bench_results directory")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative solver-time slowdown that counts as "
                             "a regression (default 0.20 = 20%%)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore loops faster than this in both runs "
                             "(default 0.05)")
    args = parser.parse_args(argv[1:])

    base_files = bench_files(args.baseline)
    cand_files = bench_files(args.candidate)
    regressions = []
    notes = []
    for name in sorted(base_files - cand_files):
        notes.append(f"{name}: only in baseline")
    for name in sorted(cand_files - base_files):
        notes.append(f"{name}: only in candidate")
    for name in sorted(base_files & cand_files):
        try:
            file_regressions, file_notes = compare_file(
                name, os.path.join(args.baseline, name),
                os.path.join(args.candidate, name), args.threshold,
                args.min_seconds)
        except (OSError, json.JSONDecodeError) as err:
            regressions.append(f"{name}: unreadable ({err})")
            continue
        regressions.extend(file_regressions)
        notes.extend(file_notes)

    for line in notes:
        print(f"note  {line}")
    for line in regressions:
        print(f"REGR  {line}")
    compared = len(base_files & cand_files)
    print(f"compared {compared} artifact(s): {len(regressions)} "
          f"regression(s), {len(notes)} note(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
