#!/usr/bin/env python3
"""Validate bench_results/BENCH_*.json artifacts (schema_version 2-9).

Schema 9 (this version) extends schema 8 with the scheduling-service
replay summary: an OPTIONAL top-level "service" object (present only
when the experiment drove the scheduling service, i.e. bench/
service_bench) carrying requests / shed / errors / cache_hits counters,
qps and p50_ms / p95_ms / p99_ms latency percentiles, a cache_hit_rate
in [0, 1], and a "statuses" histogram whose keys MUST come from the
protocol's closed response-status set (ok, timeout, node_limit,
unsolved, cancelled, error, retry_after) — an unknown status string is
rejected, catching drift between service/Server.cpp's status mapping
and consumers.
Schema 8 extends schema 7 with the solution-cache
fields: the config's cache flag (the MODSCHED_BENCH_CACHE /
MODSCHED_CACHE knob), a per-record cache_hit flag (true = the schedule
was replayed from the content-addressed solution cache; such a record
must be solved and must report ZERO solver effort — no attempts, no
nodes, no iterations, no PB conflicts — anything else is rejected),
and a top-level cache_counters object with the hits / misses / inserts
/ evictions ilpsched/cache.* telemetry snapshot.
Schema 7 extended schema 6 with the portfolio-backend
fields: "portfolio" joins the accepted config.backend strings (the
MODSCHED_BENCH_BACKEND / MODSCHED_BACKEND knob) and every attempt
carries a winner string ("ilp" or "pb" for a conclusive verdict
committed by that engine; empty on censored/cancelled attempts and
under single-engine backends — anything else is rejected) plus a
bound_exchanges count of cross-engine incumbent exchanges.
Schema 6 extended schema 5 with the solve-forensics
fields: the config's explain flag (the MODSCHED_BENCH_EXPLAIN knob),
per-record explained_attempts / unexplained_attempts counters, and
per-attempt witness / witness_source / witness_verified /
witness_detail infeasibility-explanation fields plus the proof / gap /
root_bound / trajectory optimality-audit fields (trajectory entries
are {seconds, nodes, incumbent, has_incumbent, bound} objects).
Schema 5 extended schema 4 with the exact-backend fields:
the config's backend string (the MODSCHED_BENCH_BACKEND /
MODSCHED_BACKEND knob, "ilp" or "pb"), per-record pb_conflicts /
pb_propagations counters (CDCL conflicts and unit propagations summed
over all PB solves; zeros under the ILP backend), and a per-attempt
pb_conflicts counter.
Schema 4 extended schema 3 with the LP-engine fields: the
config's engine string (the MODSCHED_BENCH_ENGINE / MODSCHED_LP_ENGINE
knob, "dense" or "sparse_revised") and per-record refactorizations /
eta_nnz factorization counters (basis refactorizations and product-form
eta nonzeros summed over all node LPs; zeros under the dense engine).
Schema 3 extended schema 2 with concurrency fields: the
config's jobs count (the MODSCHED_BENCH_JOBS knob), a per-record
node_limit_hit flag with its "node_limit" status, and a per-attempt
cancelled flag (set on II attempts stopped by a lower-II race winner).
Schema 2 extended schema 1 with the warm-start solver fields: per-record
warm_solves / cold_solves / warm_iterations counters and the config's
warm_start flag (the MODSCHED_BENCH_WARMSTART A/B knob). Legacy
artifacts still validate; each version's keys are required only when
the file declares at least that schema_version.

Stdlib-only. Usage:

    python3 scripts/check_bench_json.py bench_results/*.json

Exits 0 iff every file conforms to the schema documented in
docs/OBSERVABILITY.md, printing one line per file. Intended for CI and
for catching drift between bench/Harness.cpp's emitter and consumers.
"""

import json
import numbers
import sys

CONFIG_KEYS = {
    "synthetic_loops": numbers.Integral,
    "seed": numbers.Integral,
    "time_limit_seconds": numbers.Real,
    "node_limit": numbers.Integral,
    "large_cap": numbers.Integral,
    "warm_start": bool,
}

# Keys required only when schema_version >= 3.
CONFIG_KEYS_V3 = {
    "jobs": numbers.Integral,
}

# Keys required only when schema_version >= 4.
CONFIG_KEYS_V4 = {
    "engine": str,
}

# Keys required only when schema_version >= 5.
CONFIG_KEYS_V5 = {
    "backend": str,
}

# Keys required only when schema_version >= 6.
CONFIG_KEYS_V6 = {
    "explain": bool,
}

# Keys required only when schema_version >= 8.
CONFIG_KEYS_V8 = {
    "cache": bool,
}

RECORD_KEYS = {
    "name": str,
    "n": numbers.Integral,
    "solved": bool,
    "timed_out": bool,
    "status": str,
    "ii": numbers.Integral,
    "mii": numbers.Integral,
    "nodes": numbers.Integral,
    "iterations": numbers.Integral,
    "warm_solves": numbers.Integral,
    "cold_solves": numbers.Integral,
    "warm_iterations": numbers.Integral,
    "variables": numbers.Integral,
    "constraints": numbers.Integral,
    "seconds": numbers.Real,
    "secondary": numbers.Real,
    "max_live": numbers.Integral,
    "total_lifetime": numbers.Integral,
    "buffers": numbers.Integral,
    "attempts": list,
}

RECORD_KEYS_V3 = {
    "node_limit_hit": bool,
}

RECORD_KEYS_V4 = {
    "refactorizations": numbers.Integral,
    "eta_nnz": numbers.Integral,
}

RECORD_KEYS_V5 = {
    "pb_conflicts": numbers.Integral,
    "pb_propagations": numbers.Integral,
}

RECORD_KEYS_V6 = {
    "explained_attempts": numbers.Integral,
    "unexplained_attempts": numbers.Integral,
}

RECORD_KEYS_V8 = {
    "cache_hit": bool,
}

# Snapshot of the ilpsched/cache.* telemetry counters at write time.
CACHE_COUNTER_KEYS_V8 = {
    "hits": numbers.Integral,
    "misses": numbers.Integral,
    "inserts": numbers.Integral,
    "evictions": numbers.Integral,
}

# Optional top-level "service" object (schema 9): the scheduling-service
# replay summary emitted by bench/service_bench.
SERVICE_KEYS_V9 = {
    "requests": numbers.Integral,
    "shed": numbers.Integral,
    "errors": numbers.Integral,
    "cache_hits": numbers.Integral,
    "qps": numbers.Real,
    "p50_ms": numbers.Real,
    "p95_ms": numbers.Real,
    "p99_ms": numbers.Real,
    "cache_hit_rate": numbers.Real,
    "statuses": dict,
}

# The protocol's closed response-status set (service/Protocol.h and
# docs/SERVICE.md). "statuses" histogram keys must come from here.
SERVICE_STATUSES_V9 = {"ok", "timeout", "node_limit", "unsolved",
                       "cancelled", "error", "retry_after"}

ATTEMPT_KEYS = {
    "ii": numbers.Integral,
    "status": str,
    "window_infeasible": bool,
    "scheduled": bool,
    "nodes": numbers.Integral,
    "iterations": numbers.Integral,
    "variables": numbers.Integral,
    "constraints": numbers.Integral,
    "seconds": numbers.Real,
}

ATTEMPT_KEYS_V3 = {
    "cancelled": bool,
}

ATTEMPT_KEYS_V5 = {
    "pb_conflicts": numbers.Integral,
}

ATTEMPT_KEYS_V6 = {
    "witness": str,
    "witness_source": str,
    "witness_verified": bool,
    "witness_detail": str,
    "proof": str,
    "gap": numbers.Real,
    "root_bound": numbers.Real,
    "trajectory": list,
}

ATTEMPT_KEYS_V7 = {
    "winner": str,
    "bound_exchanges": numbers.Integral,
}

TRAJECTORY_KEYS_V6 = {
    "seconds": numbers.Real,
    "nodes": numbers.Integral,
    "incumbent": numbers.Real,
    "has_incumbent": bool,
    "bound": numbers.Real,
}

STATUSES_V2 = {"solved", "timeout", "unsolved"}
STATUSES_V3 = STATUSES_V2 | {"node_limit"}

# Per-attempt solver verdicts (ilp::toString(MipStatus)). Checked at
# every schema version: the emitter has printed these strings since
# schema 2, and an unknown verdict used to slip through unvalidated.
ATTEMPT_STATUSES = {"optimal", "infeasible", "limit", "cancelled"}

ENGINES_V4 = {"dense", "sparse_revised"}

BACKENDS_V5 = {"ilp", "pb"}
BACKENDS_V7 = BACKENDS_V5 | {"portfolio"}

# Per-attempt committed engine under the portfolio backend; empty means
# "no conclusive verdict" or a single-engine backend.
WINNERS_V7 = {"", "ilp", "pb"}

WITNESSES_V6 = {"cycle", "resource", "window", "none"}
WITNESS_SOURCES_V6 = {"graph", "farkas", "core", "none"}
PROOFS_V6 = {"", "optimal", "first_solution", "censored"}


class SchemaError(Exception):
    pass


def check_keys(obj, spec, where):
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected object, got {type(obj).__name__}")
    missing = set(spec) - set(obj)
    if missing:
        raise SchemaError(f"{where}: missing keys {sorted(missing)}")
    for key, expected in spec.items():
        value = obj[key]
        # bool is a subclass of int in Python; reject it where we expect
        # genuine numbers so "solved": 1 and "n": true both fail.
        if expected is not bool and isinstance(value, bool):
            raise SchemaError(f"{where}.{key}: expected {expected.__name__}, "
                              f"got bool")
        if not isinstance(value, expected):
            raise SchemaError(f"{where}.{key}: expected {expected.__name__}, "
                              f"got {type(value).__name__}")


def check_record(record, where, version):
    check_keys(record, RECORD_KEYS, where)
    if version >= 3:
        check_keys(record, RECORD_KEYS_V3, where)
    if version >= 4:
        check_keys(record, RECORD_KEYS_V4, where)
    if version >= 5:
        check_keys(record, RECORD_KEYS_V5, where)
    if version >= 6:
        check_keys(record, RECORD_KEYS_V6, where)
    if version >= 8:
        check_keys(record, RECORD_KEYS_V8, where)
        if record["cache_hit"]:
            # A cache-served record replays a previous verified solve;
            # it must never masquerade as solver work.
            if not record["solved"]:
                raise SchemaError(f"{where}: cache_hit=true but "
                                  f"solved=false")
            if record["attempts"]:
                raise SchemaError(f"{where}: cache_hit=true but "
                                  f"{len(record['attempts'])} solver "
                                  f"attempt(s) reported")
            for effort in ("nodes", "iterations", "pb_conflicts",
                           "pb_propagations"):
                if record[effort]:
                    raise SchemaError(f"{where}: cache_hit=true but "
                                      f"{effort}={record[effort]}")
    statuses = STATUSES_V3 if version >= 3 else STATUSES_V2
    if record["status"] not in statuses:
        raise SchemaError(f"{where}.status: {record['status']!r} not in "
                          f"{sorted(statuses)}")
    if record["solved"] and record["status"] != "solved":
        raise SchemaError(f"{where}: solved=true but status="
                          f"{record['status']!r}")
    if version >= 3:
        if record["status"] == "node_limit" and not record["node_limit_hit"]:
            raise SchemaError(f"{where}: status='node_limit' but "
                              f"node_limit_hit=false")
        if record["timed_out"] and record["status"] not in {"timeout",
                                                            "solved"}:
            raise SchemaError(f"{where}: timed_out=true but status="
                              f"{record['status']!r} (timeout wins over "
                              f"node_limit)")
    for i, attempt in enumerate(record["attempts"]):
        awhere = f"{where}.attempts[{i}]"
        check_keys(attempt, ATTEMPT_KEYS, awhere)
        if attempt["status"] not in ATTEMPT_STATUSES:
            raise SchemaError(f"{awhere}.status: {attempt['status']!r} not "
                              f"in {sorted(ATTEMPT_STATUSES)}")
        if version >= 3:
            check_keys(attempt, ATTEMPT_KEYS_V3, awhere)
        if version >= 5:
            check_keys(attempt, ATTEMPT_KEYS_V5, awhere)
        if version >= 6:
            check_attempt_forensics(attempt, awhere)
        if version >= 7:
            check_keys(attempt, ATTEMPT_KEYS_V7, awhere)
            if attempt["winner"] not in WINNERS_V7:
                raise SchemaError(f"{awhere}.winner: "
                                  f"{attempt['winner']!r} not in "
                                  f"{sorted(WINNERS_V7)}")
            if attempt["winner"] and attempt["cancelled"]:
                raise SchemaError(f"{awhere}: cancelled attempt claims "
                                  f"winner={attempt['winner']!r}")


def check_attempt_forensics(attempt, awhere):
    check_keys(attempt, ATTEMPT_KEYS_V6, awhere)
    if attempt["witness"] not in WITNESSES_V6:
        raise SchemaError(f"{awhere}.witness: {attempt['witness']!r} not in "
                          f"{sorted(WITNESSES_V6)}")
    if attempt["witness_source"] not in WITNESS_SOURCES_V6:
        raise SchemaError(f"{awhere}.witness_source: "
                          f"{attempt['witness_source']!r} not in "
                          f"{sorted(WITNESS_SOURCES_V6)}")
    if attempt["proof"] not in PROOFS_V6:
        raise SchemaError(f"{awhere}.proof: {attempt['proof']!r} not in "
                          f"{sorted(PROOFS_V6)}")
    if attempt["witness"] != "none" and attempt["witness_source"] == "none":
        raise SchemaError(f"{awhere}: witness={attempt['witness']!r} but "
                          f"witness_source='none'")
    for t, sample in enumerate(attempt["trajectory"]):
        check_keys(sample, TRAJECTORY_KEYS_V6, f"{awhere}.trajectory[{t}]")


def check_service(service):
    check_keys(service, SERVICE_KEYS_V9, "$.service")
    for key in ("requests", "shed", "errors", "cache_hits"):
        if service[key] < 0:
            raise SchemaError(f"$.service.{key}: negative count "
                              f"{service[key]}")
    if not 0.0 <= service["cache_hit_rate"] <= 1.0:
        raise SchemaError(f"$.service.cache_hit_rate: "
                          f"{service['cache_hit_rate']} outside [0, 1]")
    for status, count in service["statuses"].items():
        swhere = f"$.service.statuses[{status!r}]"
        if status not in SERVICE_STATUSES_V9:
            raise SchemaError(f"{swhere}: unknown status (want one of "
                              f"{sorted(SERVICE_STATUSES_V9)})")
        if isinstance(count, bool) or not isinstance(count, numbers.Integral):
            raise SchemaError(f"{swhere}: expected integer, got "
                              f"{type(count).__name__}")
        if count < 0:
            raise SchemaError(f"{swhere}: negative count {count}")


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    check_keys(doc, {
        "schema_version": numbers.Integral,
        "experiment": str,
        "generated_unix": numbers.Integral,
        "config": dict,
        "metrics": dict,
        "record_sets": list,
    }, "$")
    version = doc["schema_version"]
    if version not in (2, 3, 4, 5, 6, 7, 8, 9):
        raise SchemaError(f"$.schema_version: expected 2 through 9, got "
                          f"{version}")
    if not doc["experiment"]:
        raise SchemaError("$.experiment: empty string")
    check_keys(doc["config"], CONFIG_KEYS, "$.config")
    if version >= 3:
        check_keys(doc["config"], CONFIG_KEYS_V3, "$.config")
    if version >= 4:
        check_keys(doc["config"], CONFIG_KEYS_V4, "$.config")
        if doc["config"]["engine"] not in ENGINES_V4:
            raise SchemaError(f"$.config.engine: "
                              f"{doc['config']['engine']!r} not in "
                              f"{sorted(ENGINES_V4)}")
    if version >= 5:
        check_keys(doc["config"], CONFIG_KEYS_V5, "$.config")
        backends = BACKENDS_V7 if version >= 7 else BACKENDS_V5
        if doc["config"]["backend"] not in backends:
            raise SchemaError(f"$.config.backend: "
                              f"{doc['config']['backend']!r} not in "
                              f"{sorted(backends)}")
    if version >= 6:
        check_keys(doc["config"], CONFIG_KEYS_V6, "$.config")
    if version >= 8:
        check_keys(doc["config"], CONFIG_KEYS_V8, "$.config")
        check_keys(doc, {"cache_counters": dict}, "$")
        check_keys(doc["cache_counters"], CACHE_COUNTER_KEYS_V8,
                   "$.cache_counters")
    if "service" in doc:
        if version < 9:
            raise SchemaError(f"$.service: present but schema_version="
                              f"{version} predates it (want >= 9)")
        check_service(doc["service"])
    for key, value in doc["metrics"].items():
        if isinstance(value, bool) or not isinstance(value, numbers.Real):
            raise SchemaError(f"$.metrics[{key!r}]: expected number, got "
                              f"{type(value).__name__}")
    n_records = 0
    for s, record_set in enumerate(doc["record_sets"]):
        where = f"$.record_sets[{s}]"
        check_keys(record_set, {"label": str, "records": list}, where)
        for r, record in enumerate(record_set["records"]):
            check_record(record, f"{where}.records[{r}]", version)
            n_records += 1
    return len(doc["record_sets"]), n_records


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} BENCH_*.json...", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            n_sets, n_records = check_file(path)
        except (OSError, json.JSONDecodeError, SchemaError) as err:
            print(f"FAIL {path}: {err}")
            failures += 1
        else:
            print(f"ok   {path}: {n_sets} record set(s), "
                  f"{n_records} record(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
