//===- examples/pipeline_codegen.cpp - From schedule to pipelined code ----===//
//
// Shows the downstream consumers of a modulo schedule: the cycle-accurate
// pipeline simulator (measured throughput approaches II) and the kernel
// emitter (prologue / kernel / epilogue with modulo variable expansion).
//
// Run: build/examples/pipeline_codegen [kernel-name]
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelEmitter.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/PipelineSimulator.h"
#include "sched/RegisterPressure.h"
#include "workloads/KernelLibrary.h"

#include <cstdio>
#include <cstring>

using namespace modsched;

int main(int argc, char **argv) {
  MachineModel Machine = MachineModel::vliw2();
  const char *Wanted = argc > 1 ? argv[1] : "daxpy";

  DependenceGraph Loop = [&] {
    for (DependenceGraph &G : allKernels(Machine))
      if (G.name() == Wanted)
        return std::move(G);
    std::fprintf(stderr, "unknown kernel '%s', using daxpy\n", Wanted);
    return daxpy(Machine);
  }();

  SchedulerOptions Options;
  Options.Formulation.Obj = Objective::MinReg;
  OptimalModuloScheduler Scheduler(Machine, Options);
  ScheduleResult R = Scheduler.schedule(Loop);
  if (!R.Found) {
    std::printf("no schedule found within budget\n");
    return 1;
  }
  std::printf("loop '%s': optimal II=%d, MaxLive=%d\n",
              Loop.name().c_str(), R.II,
              computeRegisterPressure(Loop, R.Schedule).MaxLive);

  // Simulate 100 overlapped iterations: cycles/iteration approaches II.
  for (int Iterations : {1, 4, 16, 100}) {
    SimulationReport Sim =
        simulateSchedule(Loop, Machine, R.Schedule, Iterations);
    if (Sim.Violation) {
      std::printf("simulation violation: %s\n", Sim.Violation->c_str());
      return 1;
    }
    std::printf("  %4d iterations: %5ld cycles  (%.2f cycles/iter, "
                "steady-state live=%d)\n",
                Iterations, Sim.TotalCycles, Sim.CyclesPerIteration,
                Sim.SteadyStateLiveValues);
  }

  // Emit the software-pipelined form with modulo variable expansion.
  PipelinedLoop Code = emitPipelinedLoop(Loop, Machine, R.Schedule);
  std::printf("\n%s", Code.text(Loop).c_str());
  std::printf("\n(unroll factor %d; a rotating register file would need "
              "exactly MaxLive=%d registers instead of %d names)\n",
              Code.UnrollFactor,
              computeRegisterPressure(Loop, R.Schedule).MaxLive,
              Code.NumRegisterNames);
  return 0;
}
