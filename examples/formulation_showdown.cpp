//===- examples/formulation_showdown.cpp - Structured vs traditional ------===//
//
// Demonstrates the paper's core claim on a single loop: building the
// MinReg ILP with the traditional (Ineq. 4) and the structured (Ineq. 20)
// dependence constraints and comparing branch-and-bound nodes, simplex
// iterations, and wall-clock time. Pass a .ddg file to try your own loop:
//
//   build/examples/formulation_showdown [loop.ddg]
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"
#include "sched/RegisterPressure.h"
#include "textio/DdgFormat.h"
#include "workloads/KernelLibrary.h"
#include "workloads/SyntheticGenerator.h"

#include <cstdio>

using namespace modsched;

int main(int argc, char **argv) {
  MachineModel Machine = MachineModel::cydraLike();

  DependenceGraph Loop = [&] {
    if (argc > 1) {
      std::string Error;
      auto G = loadDdgFile(argv[1], Machine, &Error);
      if (!G) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        std::exit(1);
      }
      return *G;
    }
    // Default: a medium synthetic loop where the difference shows.
    Rng R(20260705);
    SyntheticOptions Opts;
    Opts.MinOps = 12;
    Opts.MaxOps = 12;
    return generateLoop(Machine, R, Opts);
  }();

  std::printf("loop '%s': %d operations, %d scheduling edges, "
              "%d virtual registers\n\n",
              Loop.name().c_str(), Loop.numOperations(),
              Loop.numSchedEdges(), Loop.numRegisters());

  std::printf("%-14s %6s %6s %6s %10s %12s %9s %8s\n", "formulation", "II",
              "vars", "cons", "bb-nodes", "simplex-it", "maxlive", "time");
  for (DependenceStyle Dep :
       {DependenceStyle::Traditional, DependenceStyle::StructuredLoose,
        DependenceStyle::Structured}) {
    SchedulerOptions Options;
    Options.Formulation.Obj = Objective::MinReg;
    Options.Formulation.DepStyle = Dep;
    Options.TimeLimitSeconds = 60.0;
    OptimalModuloScheduler Scheduler(Machine, Options);
    ScheduleResult R = Scheduler.schedule(Loop);
    if (!R.Found) {
      std::printf("%-14s budget expired (nodes=%lld)\n", toString(Dep),
                  static_cast<long long>(R.Nodes));
      continue;
    }
    RegisterPressure P = computeRegisterPressure(Loop, R.Schedule);
    std::printf("%-14s %6d %6d %6d %10lld %12lld %9d %7.2fs\n",
                toString(Dep), R.II, R.Variables, R.Constraints,
                static_cast<long long>(R.Nodes),
                static_cast<long long>(R.SimplexIterations), P.MaxLive,
                R.Seconds);
  }
  std::printf("\nAll formulations agree on the minimum II and the minimum "
              "register requirement;\nthe structured one should reach them "
              "with far fewer branch-and-bound nodes.\n");
  return 0;
}
