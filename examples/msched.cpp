//===- examples/msched.cpp - Command-line modulo scheduler ----------------===//
//
// A complete command-line driver over the public API:
//
//   msched [options] (<loop.ddg> | --kernel=<name> | --list-kernels)
//
// Options:
//   --machine=example3|cydra|vliw2     target machine (default cydra)
//   --machine-file=<file.mdesc>        custom machine description
//   --objective=noobj|minreg|minbuff|minlife|minsl   (default minreg)
//   --formulation=structured|traditional|loose       (default structured)
//   --instance-mapped                  Altman-style instance mapping
//   --heuristic                        use the Iterative Modulo Scheduler
//   --stage-schedule                   run the stage-scheduling post-pass
//   --time=<seconds>                   per-loop budget (default 60)
//   --explain                          solve forensics: print a verified
//                                      witness for every infeasible II
//                                      and the optimality audit trail
//   --cache                            consult the content-addressed
//                                      solution cache before solving
//                                      (equivalent to MODSCHED_CACHE=1)
//   --simulate=<iterations>            run the pipeline simulator
//   --emit-code                        emit prologue/kernel/epilogue
//   --print-model                      dump the ILP in CPLEX LP format
//   --print-ddg                        dump the loop in .ddg format
//
//===----------------------------------------------------------------------===//

#include "codegen/KernelEmitter.h"
#include "frontend/LoopDsl.h"
#include "heuristic/IterativeModuloScheduler.h"
#include "heuristic/StageScheduler.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/CriticalCycle.h"
#include "sched/Mii.h"
#include "sched/PipelineSimulator.h"
#include "sched/RegisterPressure.h"
#include "textio/DdgFormat.h"
#include "textio/LpWriter.h"
#include "textio/MachineFormat.h"
#include "workloads/KernelLibrary.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

using namespace modsched;

namespace {

struct CliOptions {
  std::string MachineName = "cydra";
  std::string MachineFile;
  std::string ObjectiveName = "minreg";
  std::string FormulationName = "structured";
  std::string KernelName;
  std::string DdgPath;
  bool UseHeuristic = false;
  bool InstanceMapped = false;
  bool StageSchedule = false;
  bool PrintModel = false;
  bool PrintDdg = false;
  bool Explain = false;
  bool Cache = false;
  bool ListKernels = false;
  bool EmitCode = false;
  int SimulateIterations = 0;
  double TimeLimit = 60.0;
};

bool parseFlag(const char *Arg, const char *Name, std::string &Out) {
  std::string Prefix = std::string("--") + Name + "=";
  if (std::strncmp(Arg, Prefix.c_str(), Prefix.size()) != 0)
    return false;
  Out = Arg + Prefix.size();
  return true;
}

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] (<loop.ddg> | --kernel=<name> | "
               "--list-kernels)\nsee the file header for options\n",
               Argv0);
  std::exit(2);
}

std::optional<CliOptions> parseArgs(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    std::string Value;
    if (parseFlag(Arg, "machine", Opts.MachineName) ||
        parseFlag(Arg, "machine-file", Opts.MachineFile) ||
        parseFlag(Arg, "objective", Opts.ObjectiveName) ||
        parseFlag(Arg, "formulation", Opts.FormulationName) ||
        parseFlag(Arg, "kernel", Opts.KernelName))
      continue;
    if (parseFlag(Arg, "time", Value)) {
      Opts.TimeLimit = std::atof(Value.c_str());
      continue;
    }
    if (parseFlag(Arg, "simulate", Value)) {
      Opts.SimulateIterations = std::atoi(Value.c_str());
      continue;
    }
    if (!std::strcmp(Arg, "--emit-code")) {
      Opts.EmitCode = true;
      continue;
    }
    if (!std::strcmp(Arg, "--heuristic")) {
      Opts.UseHeuristic = true;
      continue;
    }
    if (!std::strcmp(Arg, "--instance-mapped")) {
      Opts.InstanceMapped = true;
      continue;
    }
    if (!std::strcmp(Arg, "--stage-schedule")) {
      Opts.StageSchedule = true;
      continue;
    }
    if (!std::strcmp(Arg, "--print-model")) {
      Opts.PrintModel = true;
      continue;
    }
    if (!std::strcmp(Arg, "--print-ddg")) {
      Opts.PrintDdg = true;
      continue;
    }
    if (!std::strcmp(Arg, "--explain")) {
      Opts.Explain = true;
      continue;
    }
    if (!std::strcmp(Arg, "--cache")) {
      Opts.Cache = true;
      continue;
    }
    if (!std::strcmp(Arg, "--list-kernels")) {
      Opts.ListKernels = true;
      continue;
    }
    if (Arg[0] == '-')
      return std::nullopt;
    if (!Opts.DdgPath.empty())
      return std::nullopt;
    Opts.DdgPath = Arg;
  }
  return Opts;
}

void emitExtras(const CliOptions &Cli, const DependenceGraph &G,
                const MachineModel &M, const ModuloSchedule &S) {
  if (Cli.SimulateIterations > 0) {
    SimulationReport Sim =
        simulateSchedule(G, M, S, Cli.SimulateIterations);
    if (Sim.Violation) {
      std::printf("\nsimulation violation: %s\n", Sim.Violation->c_str());
      return;
    }
    std::printf("\nsimulated %d iterations: %ld cycles "
                "(%.2f cycles/iter), steady-state live values %d\n",
                Sim.Iterations, Sim.TotalCycles, Sim.CyclesPerIteration,
                Sim.SteadyStateLiveValues);
  }
  if (Cli.EmitCode) {
    PipelinedLoop Code = emitPipelinedLoop(G, M, S);
    std::printf("\n%s", Code.text(G).c_str());
  }
}

void printSchedule(const DependenceGraph &G, const MachineModel &M,
                   const ModuloSchedule &S) {
  std::printf("\nschedule (II=%d, length=%d, stages=%d):\n", S.ii(),
              S.scheduleLength(), S.numStages());
  for (int Op = 0; Op < G.numOperations(); ++Op)
    std::printf("  %-16s time=%3d row=%2d stage=%d\n",
                G.operation(Op).Name.c_str(), S.time(Op), S.row(Op),
                S.stage(Op));
  Mrt Table(G, M, S);
  std::printf("\nMRT:\n%s", Table.toString(M).c_str());
  RegisterPressure P = computeRegisterPressure(G, S);
  std::printf("\nMaxLive=%d  total-lifetime=%ld  buffers=%ld\n", P.MaxLive,
              P.TotalLifetime, P.Buffers);
}

} // namespace

int main(int Argc, char **Argv) {
  std::optional<CliOptions> OptsOr = parseArgs(Argc, Argv);
  if (!OptsOr)
    usage(Argv[0]);
  CliOptions &Cli = *OptsOr;

  MachineModel Machine = Cli.MachineName == "example3"
                             ? MachineModel::example3()
                         : Cli.MachineName == "vliw2"
                             ? MachineModel::vliw2()
                             : MachineModel::cydraLike();
  if (!Cli.MachineFile.empty()) {
    std::ifstream In(Cli.MachineFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   Cli.MachineFile.c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    std::string Error;
    auto Parsed = parseMachine(Buffer.str(), &Error);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s: %s\n", Cli.MachineFile.c_str(),
                   Error.c_str());
      return 1;
    }
    Machine = std::move(*Parsed);
  }

  if (Cli.ListKernels) {
    for (const DependenceGraph &G : allKernels(Machine))
      std::printf("%-28s %2d ops, %2d edges, %2d vregs, MII %d\n",
                  G.name().c_str(), G.numOperations(), G.numSchedEdges(),
                  G.numRegisters(), mii(G, Machine));
    return 0;
  }

  // Load the loop.
  std::optional<DependenceGraph> Loop;
  if (!Cli.KernelName.empty()) {
    for (DependenceGraph &G : allKernels(Machine))
      if (G.name() == Cli.KernelName)
        Loop = std::move(G);
    if (!Loop) {
      std::fprintf(stderr, "error: unknown kernel %s (try --list-kernels)\n",
                   Cli.KernelName.c_str());
      return 1;
    }
  } else if (!Cli.DdgPath.empty()) {
    std::string Error;
    bool IsDsl = Cli.DdgPath.size() > 5 &&
                 Cli.DdgPath.rfind(".loop") == Cli.DdgPath.size() - 5;
    if (IsDsl) {
      // Source-level input: compile the loop language to a DDG.
      std::ifstream In(Cli.DdgPath);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     Cli.DdgPath.c_str());
        return 1;
      }
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      Loop = compileLoopDsl(Buffer.str(), Machine, &Error);
    } else {
      Loop = loadDdgFile(Cli.DdgPath, Machine, &Error);
    }
    if (!Loop) {
      std::fprintf(stderr, "error: %s: %s\n", Cli.DdgPath.c_str(),
                   Error.c_str());
      return 1;
    }
  } else {
    usage(Argv[0]);
  }

  if (Cli.PrintDdg)
    std::printf("%s", printDdg(*Loop, Machine).c_str());

  std::printf("loop '%s' on machine '%s': %d ops, MII=%d "
              "(ResMII=%d, RecMII=%d)\n",
              Loop->name().c_str(), Machine.name().c_str(),
              Loop->numOperations(), mii(*Loop, Machine),
              resMii(*Loop, Machine), recMii(*Loop));
  if (recMii(*Loop) >= resMii(*Loop, Machine)) {
    if (auto Cycle = findCriticalCycle(*Loop))
      std::printf("binding recurrence: %s\n",
                  describeCycle(*Loop, *Cycle).c_str());
  }

  if (Cli.UseHeuristic) {
    IterativeModuloScheduler Ims(Machine);
    ImsResult R = Ims.schedule(*Loop);
    if (!R.Found) {
      std::fprintf(stderr, "heuristic failed to find a schedule\n");
      return 1;
    }
    ModuloSchedule S = R.Schedule;
    if (Cli.StageSchedule) {
      StageSchedulerOptions StageOpts;
      StageOpts.Metric = StageMetric::MaxLive;
      S = stageSchedule(*Loop, S, StageOpts);
    }
    std::printf("iterative modulo scheduler%s\n",
                Cli.StageSchedule ? " + stage scheduling" : "");
    printSchedule(*Loop, Machine, S);
    emitExtras(Cli, *Loop, Machine, S);
    return 0;
  }

  SchedulerOptions Opts;
  Opts.TimeLimitSeconds = Cli.TimeLimit;
  Opts.Formulation.Obj = Cli.ObjectiveName == "noobj"     ? Objective::None
                         : Cli.ObjectiveName == "minbuff" ? Objective::MinBuff
                         : Cli.ObjectiveName == "minlife" ? Objective::MinLife
                         : Cli.ObjectiveName == "minsl"   ? Objective::MinSL
                                                          : Objective::MinReg;
  Opts.Formulation.DepStyle =
      Cli.FormulationName == "traditional" ? DependenceStyle::Traditional
      : Cli.FormulationName == "loose"     ? DependenceStyle::StructuredLoose
                                           : DependenceStyle::Structured;
  Opts.Formulation.InstanceMapped = Cli.InstanceMapped;
  if (Cli.Explain)
    Opts.Explain = true;
  if (Cli.Cache)
    Opts.Cache = true;

  if (Cli.PrintModel) {
    Formulation F(*Loop, Machine, mii(*Loop, Machine), Opts.Formulation);
    if (F.valid())
      std::printf("%s", writeLpFormat(F.model()).c_str());
    else
      std::printf("\\ MII infeasible within the schedule-length budget\n");
  }

  OptimalModuloScheduler Scheduler(Machine, Opts);
  ScheduleResult R = Scheduler.schedule(*Loop);

  // Solve forensics: one line per attempt — the verified witness behind
  // every infeasible II and the optimality evidence of the solved one.
  // Printed whenever records were collected, so MODSCHED_EXPLAIN=1
  // works without the flag.
  if (Opts.Explain) {
    std::printf("\nsolve forensics:\n");
    // Cache-served results carry no attempt records (a hit honestly
    // reports zero solver effort), so the forensics section states the
    // provenance instead: cache_hit plus the content address the reply
    // was served under — the same fields bench records and the service
    // protocol report.
    if (R.CacheHit)
      std::printf("  cache_hit canonical=%016llx request=%016llx II=%d "
                  "(verifier re-checked replay; no solver attempts)\n",
                  static_cast<unsigned long long>(R.CacheCanonicalHash),
                  static_cast<unsigned long long>(R.CacheRequestKey), R.II);
    for (const IiAttempt &A : R.Attempts) {
      std::printf("  II=%-3d %-10s", A.II, ilp::toString(A.Status));
      if (!A.Winner.empty())
        std::printf(" winner=%s", A.Winner.c_str());
      if (A.BoundExchanges > 0)
        std::printf(" bound-exchanges=%lld",
                    static_cast<long long>(A.BoundExchanges));
      if (A.Explain)
        std::printf(" [%s, %s] %s", sourceName(A.Explain->Source),
                    A.Explain->Verified ? "verified" : "UNVERIFIED",
                    describeExplanation(*Loop, Machine, A.II,
                                        *A.Explain).c_str());
      else if (!A.Scheduled && !A.Cancelled &&
               A.Status == ilp::MipStatus::Infeasible)
        std::printf(" (unexplained)");
      if (A.Audit) {
        std::printf(" proof=%s objective=%g", A.Audit->Proof.c_str(),
                    A.Audit->FinalObjective);
        if (A.Audit->HasRootBound)
          std::printf(" root-bound=%g gap=%g", A.Audit->RootBound,
                      A.Audit->Gap);
        for (const ilp::BoundSample &B : A.Audit->Trajectory)
          if (B.Incumbent < 1e300)
            std::printf("\n      incumbent %g at %.3fs (%lld nodes)",
                        B.Incumbent, B.Seconds,
                        static_cast<long long>(B.Nodes));
      }
      std::printf("\n");
    }
  }

  if (!R.Found) {
    std::fprintf(stderr, "no schedule within budget (%.0fs); nodes=%lld\n",
                 Cli.TimeLimit, static_cast<long long>(R.Nodes));
    return 1;
  }
  std::printf("optimal %s schedule (%s formulation): II=%d, secondary=%g%s\n"
              "nodes=%lld simplex-iterations=%lld vars=%d cons=%d "
              "time=%.2fs\n",
              toString(Opts.Formulation.Obj),
              toString(Opts.Formulation.DepStyle), R.II,
              R.SecondaryObjective,
              R.CacheHit ? " [solution cache]" : "",
              static_cast<long long>(R.Nodes),
              static_cast<long long>(R.SimplexIterations), R.Variables,
              R.Constraints, R.Seconds);
  printSchedule(*Loop, Machine, R.Schedule);
  emitExtras(Cli, *Loop, Machine, R.Schedule);
  return 0;
}
