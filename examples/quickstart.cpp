//===- examples/quickstart.cpp - Library tour on the paper's Example 1 ----===//
//
// Builds the paper's running example (y[i] = x[i]^2 - x[i] - a), schedules
// it with the structured-formulation optimal scheduler for minimum
// register requirements, and prints the schedule, the modulo reservation
// table, and the register metrics — reproducing Figure 1 end to end.
//
// Run: build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ilpsched/OptimalScheduler.h"
#include "sched/RegisterPressure.h"
#include "sched/Verifier.h"
#include "workloads/KernelLibrary.h"

#include <cstdio>

using namespace modsched;

int main() {
  // 1. A target machine: three universal fully-pipelined units.
  MachineModel Machine = MachineModel::example3();
  std::printf("%s\n", Machine.toString().c_str());

  // 2. The loop y[i] = x[i]^2 - x[i] - a as a dependence graph.
  DependenceGraph Loop = paperExample1(Machine);
  std::printf("%s\n", Loop.toString().c_str());

  // 3. Schedule optimally: minimum II, then minimum MaxLive among all
  //    minimum-II schedules, using the paper's 0-1-structured ILP.
  SchedulerOptions Options;
  Options.Formulation.Obj = Objective::MinReg;
  Options.Formulation.DepStyle = DependenceStyle::Structured;
  OptimalModuloScheduler Scheduler(Machine, Options);
  ScheduleResult Result = Scheduler.schedule(Loop);
  if (!Result.Found) {
    std::printf("no schedule found within budget\n");
    return 1;
  }

  std::printf("MII = %d, achieved II = %d\n", Result.Mii, Result.II);
  std::printf("branch-and-bound nodes: %lld, simplex iterations: %lld\n",
              static_cast<long long>(Result.Nodes),
              static_cast<long long>(Result.SimplexIterations));

  // 4. Inspect the schedule (compare with the paper's Figure 1b).
  const ModuloSchedule &S = Result.Schedule;
  std::printf("\nschedule (II=%d):\n", S.ii());
  for (int Op = 0; Op < Loop.numOperations(); ++Op)
    std::printf("  %-8s time=%2d  row=%d stage=%d\n",
                Loop.operation(Op).Name.c_str(), S.time(Op), S.row(Op),
                S.stage(Op));

  // 5. The modulo reservation table (Figure 1c).
  Mrt Table(Loop, Machine, S);
  std::printf("\nMRT:\n%s", Table.toString(Machine).c_str());

  // 6. Register metrics (Figure 1d/1e): MaxLive must be exactly 7.
  RegisterPressure P = computeRegisterPressure(Loop, S);
  std::printf("\nMaxLive = %d (paper: 7), total lifetime = %ld, "
              "buffers = %ld\n",
              P.MaxLive, P.TotalLifetime, P.Buffers);

  // 7. Every schedule can be independently re-verified.
  if (auto Err = verifySchedule(Loop, Machine, S)) {
    std::printf("verification FAILED: %s\n", Err->c_str());
    return 1;
  }
  std::printf("schedule verified: dependences and resources OK\n");
  return 0;
}
