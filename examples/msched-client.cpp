//===- examples/msched-client.cpp - Batch submitter / replayer ------------===//
//
// Batch client for the scheduling service (src/service, docs/SERVICE.md):
//
//   msched-client --socket=<path> (--machine-file=<m.mdesc> |
//                 --machine=example3|cydra|vliw2)
//                 [--objective=<name>] [--time=<sec>] [--repeat=<n>]
//                 [--stats] <loop.ddg>...
//
// Frames every .ddg file into a SCHED request, submits the whole batch
// (repeated --repeat times — the replay knob that turns the second pass
// into cache hits), reads the JSON response lines, echoes them to
// stdout, and prints a one-line summary to stderr:
//
//   msched-client: <n> responses: <ok> ok (<hits> cached), <shed> shed,
//                  <err> error
//
// Exit status: 0 when every response was ok (cached or fresh), 1 when
// any request errored or was shed, 2 on usage/transport failure.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

int countLines(const std::string &Text) {
  int N = 0;
  for (std::size_t I = 0; I < Text.size(); ++I)
    if (Text[I] == '\n')
      ++N;
  if (!Text.empty() && Text.back() != '\n')
    ++N;
  return N;
}

bool writeAll(int Fd, const std::string &Data) {
  const char *P = Data.data();
  std::size_t Len = Data.size();
  while (Len > 0) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<std::size_t>(N);
  }
  return true;
}

/// True when the one-line JSON response contains "key":"value" /
/// "key":value verbatim (the responses are machine-written with no
/// whitespace, so plain substring matching is exact enough here).
bool hasField(const std::string &Line, const char *Key, const char *Value) {
  std::string Needle = std::string("\"") + Key + "\":" + Value;
  return Line.find(Needle) != std::string::npos;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath, MachineFile, Builtin, Objective = "minreg";
  std::string Time;
  int Repeat = 1;
  bool WantStats = false;
  std::vector<std::string> Loops;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--socket=", 9) == 0)
      SocketPath = Arg + 9;
    else if (std::strncmp(Arg, "--machine-file=", 15) == 0)
      MachineFile = Arg + 15;
    else if (std::strncmp(Arg, "--machine=", 10) == 0)
      Builtin = Arg + 10;
    else if (std::strncmp(Arg, "--objective=", 12) == 0)
      Objective = Arg + 12;
    else if (std::strncmp(Arg, "--time=", 7) == 0)
      Time = Arg + 7;
    else if (std::strncmp(Arg, "--repeat=", 9) == 0)
      Repeat = std::atoi(Arg + 9);
    else if (std::strcmp(Arg, "--stats") == 0)
      WantStats = true;
    else if (Arg[0] == '-') {
      std::fprintf(stderr, "msched-client: unknown option %s\n", Arg);
      return 2;
    } else
      Loops.push_back(Arg);
  }
  if (SocketPath.empty() || Loops.empty() ||
      (MachineFile.empty() && Builtin.empty()) || Repeat < 1) {
    std::fprintf(stderr,
                 "usage: %s --socket=<path> (--machine-file=<m.mdesc> | "
                 "--machine=<builtin>) [--objective=<name>] [--time=<sec>] "
                 "[--repeat=<n>] [--stats] <loop.ddg>...\n",
                 Argv[0]);
    return 2;
  }

  std::string MachineText;
  if (!MachineFile.empty() && !readFile(MachineFile, MachineText)) {
    std::fprintf(stderr, "msched-client: cannot read %s\n",
                 MachineFile.c_str());
    return 2;
  }

  // Build the whole batch up front (the replayer's frames are
  // deterministic, so a recorded corpus replays bit-identically).
  std::string Batch;
  int Expected = 0;
  for (int Pass = 0; Pass < Repeat; ++Pass) {
    for (std::size_t I = 0; I < Loops.size(); ++I) {
      std::string Ddg;
      if (!readFile(Loops[I], Ddg)) {
        std::fprintf(stderr, "msched-client: cannot read %s\n",
                     Loops[I].c_str());
        return 2;
      }
      std::string Id = "r" + std::to_string(Pass) + "-" + std::to_string(I);
      Batch += "SCHED id=" + Id + " objective=" + Objective;
      if (!Time.empty())
        Batch += " time=" + Time;
      if (!Builtin.empty())
        Batch += " machine=" + Builtin;
      Batch += "\n";
      if (Builtin.empty()) {
        Batch += "MACHINE " + std::to_string(countLines(MachineText)) + "\n";
        Batch += MachineText;
        if (!MachineText.empty() && MachineText.back() != '\n')
          Batch += "\n";
      }
      Batch += "DDG " + std::to_string(countLines(Ddg)) + "\n";
      Batch += Ddg;
      if (!Ddg.empty() && Ddg.back() != '\n')
        Batch += "\n";
      Batch += "END\n";
      ++Expected;
    }
  }
  if (WantStats) {
    Batch += "STATS\n";
    ++Expected;
  }
  Batch += "QUIT\n";

  sockaddr_un Addr;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "msched-client: socket path too long\n");
    return 2;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("msched-client: socket");
    return 2;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::perror("msched-client: connect");
    ::close(Fd);
    return 2;
  }
  if (!writeAll(Fd, Batch)) {
    std::perror("msched-client: send");
    ::close(Fd);
    return 2;
  }
  ::shutdown(Fd, SHUT_WR);

  // Read response lines until the server closes the stream.
  std::string Buf, Line;
  char Chunk[8192];
  int Got = 0, Ok = 0, Cached = 0, Shed = 0, Err = 0;
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Buf.append(Chunk, static_cast<std::size_t>(N));
    std::size_t Pos;
    while ((Pos = Buf.find('\n')) != std::string::npos) {
      Line = Buf.substr(0, Pos);
      Buf.erase(0, Pos + 1);
      if (Line.empty())
        continue;
      std::printf("%s\n", Line.c_str());
      ++Got;
      if (hasField(Line, "status", "\"ok\"")) {
        ++Ok;
        if (hasField(Line, "cache_hit", "true"))
          ++Cached;
      } else if (hasField(Line, "status", "\"retry_after\"")) {
        ++Shed;
      } else {
        ++Err;
      }
    }
  }
  ::close(Fd);

  std::fprintf(stderr,
               "msched-client: %d responses (%d expected): %d ok "
               "(%d cached), %d shed, %d error\n",
               Got, Expected, Ok, Cached, Shed, Err);
  return (Err == 0 && Shed == 0 && Got == Expected) ? 0 : 1;
}
