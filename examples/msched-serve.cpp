//===- examples/msched-serve.cpp - Scheduling service daemon --------------===//
//
// The scheduling-as-a-service daemon (src/service, docs/SERVICE.md):
//
//   msched-serve [--socket=<path>] [--stdio] [--stats-on-exit]
//
// With --socket, binds a Unix-domain socket at <path> and serves
// connections until SIGINT/SIGTERM, then drains gracefully (in-flight
// solves finish and their responses are written before exit). With
// --stdio (the default), serves one batch stream over stdin/stdout and
// exits at EOF/QUIT.
//
// Every server knob comes from the environment (MODSCHED_SERVICE_*,
// see docs/SERVICE.md); the process-wide solution cache is ON unless
// MODSCHED_SERVICE_CACHE=0.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

using namespace modsched;

namespace {

service::Server *GlobalServer = nullptr;

void onSignal(int) {
  if (GlobalServer)
    GlobalServer->requestShutdown();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  bool Stdio = true;
  bool StatsOnExit = false;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--socket=", 9) == 0) {
      SocketPath = Arg + 9;
      Stdio = false;
    } else if (std::strcmp(Arg, "--stdio") == 0) {
      Stdio = true;
    } else if (std::strcmp(Arg, "--stats-on-exit") == 0) {
      StatsOnExit = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--socket=<path>] [--stdio] "
                   "[--stats-on-exit]\n",
                   Argv[0]);
      return 2;
    }
  }

  service::Server Server(service::ServerOptions::fromEnv());

  if (Stdio) {
    Server.serveStream(std::cin, std::cout, "stdio");
  } else {
    std::string Error;
    if (!Server.listenUnix(SocketPath, &Error)) {
      std::fprintf(stderr, "msched-serve: %s\n", Error.c_str());
      return 1;
    }
    GlobalServer = &Server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::fprintf(stderr, "msched-serve: listening on %s (%d workers)\n",
                 SocketPath.c_str(), Server.options().Workers);
    Server.acceptLoop();
    GlobalServer = nullptr;
  }

  if (StatsOnExit)
    std::fprintf(stderr, "%s\n", Server.statsResponse().c_str());
  return 0;
}
