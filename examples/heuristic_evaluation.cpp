//===- examples/heuristic_evaluation.cpp - Tuning a heuristic -------------===//
//
// The paper's motivating use case: employ the optimal schedulers to
// evaluate and fine-tune a production heuristic. This example runs Rau's
// Iterative Modulo Scheduler and the stage-scheduling post-pass on every
// kernel in the library, then grades both against the optimal NoObj (for
// II) and MinReg (for register requirements) schedulers.
//
// Run: build/examples/heuristic_evaluation
//
//===----------------------------------------------------------------------===//

#include "heuristic/IterativeModuloScheduler.h"
#include "heuristic/StageScheduler.h"
#include "ilpsched/OptimalScheduler.h"
#include "sched/RegisterPressure.h"
#include "workloads/KernelLibrary.h"

#include <cstdio>

using namespace modsched;

int main() {
  MachineModel Machine = MachineModel::cydraLike();
  std::vector<DependenceGraph> Kernels = allKernels(Machine);

  IterativeModuloScheduler Ims(Machine);

  SchedulerOptions OptOptions;
  OptOptions.Formulation.Obj = Objective::MinReg;
  OptOptions.TimeLimitSeconds = 30.0;
  OptimalModuloScheduler Optimal(Machine, OptOptions);

  std::printf("%-24s %4s | %8s %9s %9s | %7s %8s\n", "kernel", "MII",
              "IMS II", "opt II", "II gap", "IMS reg", "opt reg");

  int OptimalCount = 0, RegGapTotal = 0;
  for (const DependenceGraph &G : Kernels) {
    ImsResult H = Ims.schedule(G);
    ScheduleResult O = Optimal.schedule(G);
    if (!H.Found || !O.Found) {
      std::printf("%-24s (skipped: budget expired)\n", G.name().c_str());
      continue;
    }
    // Stage scheduling reduces register pressure without touching the MRT.
    StageSchedulerOptions StageOpts;
    StageOpts.Metric = StageMetric::MaxLive;
    ModuloSchedule Staged = stageSchedule(G, H.Schedule, StageOpts);

    int HeurReg = computeRegisterPressure(G, Staged).MaxLive;
    int OptReg = computeRegisterPressure(G, O.Schedule).MaxLive;
    int Gap = H.II - O.II;
    if (Gap == 0)
      ++OptimalCount;
    if (H.II == O.II)
      RegGapTotal += HeurReg - OptReg;

    std::printf("%-24s %4d | %8d %9d %9d | %7d %8d\n", G.name().c_str(),
                H.Mii, H.II, O.II, Gap, HeurReg, OptReg);
  }

  std::printf("\nIMS matched the optimal II on %d/%zu kernels; "
              "extra registers vs optimal (equal-II kernels): %d\n",
              OptimalCount, Kernels.size(), RegGapTotal);
  std::printf("(The paper found IMS throughput-optimal on 97.7%% of its "
              "1327 loops, and the MinReg scheduler strictly better on "
              "23.6%% of loops' register usage.)\n");
  return 0;
}
